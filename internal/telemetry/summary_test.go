package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cnnsfi/internal/core"
)

// TestReadTraceHugeLine is the regression test for the bufio.Scanner
// default 64KB line cap: a quarantine event embedding a megabyte-scale
// rendered panic value must survive the trace round trip instead of
// failing with bufio.ErrTooLong.
func TestReadTraceHugeLine(t *testing.T) {
	hugeErr := strings.Repeat("stack frame / ", 1<<17) // ~1.8MB, well past 64KB
	events := []Event{
		FromTrace("big", core.TraceEvent{
			Kind: core.TraceCampaignStart, Time: time.Unix(0, 1), Seed: 7, Workers: 1,
		}),
		FromTrace("big", core.TraceEvent{
			Kind: core.TraceExperimentQuarantined, Time: time.Unix(0, 2),
			Stratum: 0, Draw: 3, Fault: "L0.w1.b30.sa1", Attempts: 3, Err: hugeErr,
		}),
	}
	var buf bytes.Buffer
	for _, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == "experiment_quarantined" && len(line) <= 64*1024 {
			t.Fatalf("test line only %d bytes; below the scanner default this test must exceed", len(line))
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}

	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace choked on a long line: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	if got[1].Error != hugeErr {
		t.Errorf("huge error field did not round-trip (%d bytes back, want %d)", len(got[1].Error), len(hugeErr))
	}
}

// TestSummarizeSupervision replays a synthetic supervised trace: retry
// and quarantine events land in the per-stratum tallies, the
// campaign_end totals surface on the summary, and the report renders
// the supervision lines (which stay absent for healthy campaigns, so
// the existing goldens cannot cover them).
func TestSummarizeSupervision(t *testing.T) {
	mk := func(kind core.TraceKind, stratum int, draw int64) Event {
		return FromTrace("sup", core.TraceEvent{
			Kind: kind, Time: time.Unix(0, 1), Stratum: stratum, Draw: draw,
			Fault: "L0.w1.b30.sa1", Attempts: 2, Err: "experiment panicked on attempt 2: boom",
		})
	}
	events := []Event{
		FromTrace("sup", core.TraceEvent{Kind: core.TraceCampaignStart, Time: time.Unix(0, 1), Planned: 100, Strata: 2}),
		mk(core.TraceExperimentRetry, 0, 3),
		mk(core.TraceExperimentRetry, 1, 9),
		mk(core.TraceExperimentQuarantined, 1, 9),
		FromTrace("sup", core.TraceEvent{
			Kind: core.TraceCampaignEnd, Time: time.Unix(0, 2),
			Done: 99, Critical: 4, Retries: 3, Quarantined: 1,
		}),
	}
	sum := Summarize(events)
	if len(sum.Campaigns) != 1 {
		t.Fatalf("campaigns = %d, want 1", len(sum.Campaigns))
	}
	c := sum.Campaigns[0]
	if c.Retries != 3 || c.Quarantined != 1 {
		t.Errorf("campaign tallies retries=%d quarantined=%d, want 3/1", c.Retries, c.Quarantined)
	}
	byStratum := map[int]*StratumSummary{}
	for _, st := range c.Strata {
		byStratum[st.Stratum] = st
	}
	if st := byStratum[0]; st == nil || st.Retried != 1 || st.Quarantined != 0 {
		t.Errorf("stratum 0 summary = %+v, want Retried=1 Quarantined=0", st)
	}
	if st := byStratum[1]; st == nil || st.Retried != 1 || st.Quarantined != 1 {
		t.Errorf("stratum 1 summary = %+v, want Retried=1 Quarantined=1", st)
	}

	var rep bytes.Buffer
	sum.WriteReport(&rep, true)
	out := rep.String()
	if !strings.Contains(out, "supervision: 3 failed attempts retried, 1 draws quarantined") {
		t.Errorf("report missing supervision line:\n%s", out)
	}
	if !strings.Contains(out, "1 quarantined (margin over reduced n)") {
		t.Errorf("report missing per-stratum quarantine note:\n%s", out)
	}
}

// TestSummarizeSupervisionFromProgressFallback: a truncated trace (no
// campaign_end) must still carry the last observed supervision tallies.
func TestSummarizeSupervisionFromProgressFallback(t *testing.T) {
	events := []Event{
		FromTrace("trunc", core.TraceEvent{Kind: core.TraceCampaignStart, Time: time.Unix(0, 1), Planned: 100}),
		FromProgress("trunc", core.Progress{Done: 50, Planned: 100, Retries: 2, Quarantined: 1}),
	}
	c := Summarize(events).Campaigns[0]
	if c.Complete {
		t.Fatal("truncated trace reported complete")
	}
	if c.Retries != 2 || c.Quarantined != 1 {
		t.Errorf("fallback tallies retries=%d quarantined=%d, want 2/1", c.Retries, c.Quarantined)
	}
}
