package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cnnsfi/internal/core"
	"cnnsfi/internal/models"
	"cnnsfi/internal/oracle"
	"cnnsfi/internal/stats"
)

// runTraced executes one seeded SmallCNN oracle campaign with a Tracer
// attached and returns the result plus the raw JSONL trace.
func runTraced(t *testing.T, workers int) (*core.Result, string) {
	t.Helper()
	net := models.SmallCNN(1)
	o := oracle.New(net, oracle.DefaultConfig(11))
	plan := core.PlanLayerWise(o.Space(), stats.SampleSizeConfig{
		ErrorMargin: 0.05, Confidence: 0.95, P: 0.5,
	})

	var buf bytes.Buffer
	tr := NewTracer(&buf, 256)
	eng := core.NewEngine(
		core.WithWorkers(workers),
		core.WithTrace(tr.Sink("smallcnn-lw")),
		core.WithProgress(tr.Progress("smallcnn-lw")),
		core.WithProgressInterval(500),
	)
	res, err := eng.Execute(context.Background(), o, plan, 42)
	if err != nil {
		t.Fatalf("Execute(workers=%d): %v", workers, err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("tracer dropped %d events with an ample buffer", d)
	}
	return res, buf.String()
}

// TestTracedCampaignInvariants is the package's acceptance test: a
// seeded campaign traced at different worker counts yields bit-identical
// Results, every trace line round-trips through the typed schema, and
// the replayed summary's totals equal the campaign's final Progress
// counters.
func TestTracedCampaignInvariants(t *testing.T) {
	res1, trace1 := runTraced(t, 1)
	res3, trace3 := runTraced(t, 3)

	// Invariant 1: tracing must not perturb the campaign, and the
	// Result stays a pure function of (plan, seed) across worker counts.
	if !reflect.DeepEqual(res1, res3) {
		t.Fatalf("results differ across worker counts:\n1: %+v\n3: %+v", res1, res3)
	}

	for _, tc := range []struct {
		workers int
		res     *core.Result
		raw     string
	}{{1, res1, trace1}, {3, res3, trace3}} {
		t.Run(fmt.Sprintf("workers=%d", tc.workers), func(t *testing.T) {
			// Invariant 2: every line is valid JSONL that round-trips
			// byte-identically through the Event schema.
			for _, line := range strings.Split(strings.TrimSpace(tc.raw), "\n") {
				ev, err := ParseEvent([]byte(line))
				if err != nil {
					t.Fatal(err)
				}
				re, err := json.Marshal(ev)
				if err != nil {
					t.Fatal(err)
				}
				if string(re) != line {
					t.Fatalf("round trip mismatch:\n in: %s\nout: %s", line, re)
				}
			}

			events, err := ReadTrace(strings.NewReader(tc.raw))
			if err != nil {
				t.Fatal(err)
			}
			sum := Summarize(events)
			if len(sum.Campaigns) != 1 {
				t.Fatalf("campaigns = %d, want 1", len(sum.Campaigns))
			}
			c := sum.Campaigns[0]

			// Invariant 3: summary totals equal the final Progress
			// counters and the Result's tallies.
			if !c.Complete {
				t.Fatal("no campaign_end in trace")
			}
			if c.FinalProgress == nil {
				t.Fatal("no final progress event in trace")
			}
			if c.Done != c.FinalProgress.Done || c.Critical != c.FinalProgress.Critical {
				t.Errorf("campaign_end (done=%d critical=%d) != final progress (done=%d critical=%d)",
					c.Done, c.Critical, c.FinalProgress.Done, c.FinalProgress.Critical)
			}
			if got := tc.res.Injections(); c.Done != got {
				t.Errorf("summary done = %d, Result injections = %d", c.Done, got)
			}
			var critical int64
			for _, est := range tc.res.Estimates {
				critical += est.Successes
			}
			if c.Critical != critical {
				t.Errorf("summary critical = %d, Result criticals = %d", c.Critical, critical)
			}
			if c.Eval != c.FinalProgress.Eval() {
				t.Errorf("campaign_end eval %+v != final progress eval %+v", c.Eval, c.FinalProgress.Eval())
			}
			if got := c.Eval.Experiments(); got != c.Done {
				t.Errorf("eval experiments = %d, done = %d", got, c.Done)
			}

			// Identity binds the trace to the exact campaign.
			if c.Seed != 42 {
				t.Errorf("seed = %d, want 42", c.Seed)
			}
			if len(c.Fingerprint) != 16 {
				t.Errorf("fingerprint = %q, want 16 hex chars", c.Fingerprint)
			}
			if c.Workers != tc.workers {
				t.Errorf("workers = %d, want %d", c.Workers, tc.workers)
			}

			// Per-stratum lifecycle: every planned stratum started,
			// ended, and tallied exactly its planned draws.
			if len(c.Strata) != len(tc.res.Plan.Subpops) {
				t.Fatalf("strata = %d, want %d", len(c.Strata), len(tc.res.Plan.Subpops))
			}
			var stratumDone int64
			for _, st := range c.Strata {
				sub := tc.res.Plan.Subpops[st.Stratum]
				if st.Planned != sub.SampleSize || st.Layer != sub.Layer || st.Bit != sub.Bit {
					t.Errorf("stratum %d identity mismatch: %+v vs sub %+v", st.Stratum, st, sub)
				}
				if st.Done != tc.res.Estimates[st.Stratum].SampleSize {
					t.Errorf("stratum %d done = %d, estimate n = %d",
						st.Stratum, st.Done, tc.res.Estimates[st.Stratum].SampleSize)
				}
				if st.Shards < 1 {
					t.Errorf("stratum %d saw no shard_done events", st.Stratum)
				}
				stratumDone += st.Done
			}
			if stratumDone != c.Done {
				t.Errorf("sum of stratum done = %d, campaign done = %d", stratumDone, c.Done)
			}

			// Worker-assignment records cover exactly the worker pool.
			for w := range c.WorkerBusy {
				if w < 0 || w >= tc.workers {
					t.Errorf("shard_done from worker %d outside pool of %d", w, tc.workers)
				}
			}

			// The report renders without panicking in both modes and
			// the stripped mode carries the tallies.
			var rep strings.Builder
			sum.WriteReport(&rep, true)
			if !strings.Contains(rep.String(), "smallcnn-lw") {
				t.Error("report missing campaign label")
			}
			sum.WriteReport(&rep, false)
		})
	}
}
