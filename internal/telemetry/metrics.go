package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"cnnsfi/internal/evalstats"
)

// Counter is a monotone int64 metric. The zero value is ready; all
// methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down. The zero value is
// ready; all methods are safe for concurrent use and allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration (Counter/Gauge/...) is cheap but
// mutex-guarded and meant for setup time; the returned handles are the
// lock-free hot-path surface. Metric names must match the Prometheus
// grammar and each (name, label set) series must be unique; all series
// sharing a name must share a type. Violations panic, as
// misregistration is a programming error.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
}

type entry struct {
	name, help, typ string
	// labels is the pre-rendered label block (`{k="v",...}`), empty for
	// unlabeled series.
	labels string
	// collect appends the entry's samples (full lines) to w.
	collect func(w io.Writer) error
}

var (
	metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Label is one name="value" pair attached to a labeled metric series.
// Values may contain any bytes; they are escaped at render time.
type Label struct{ Name, Value string }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// renderLabels turns labels into the `{k="v",...}` block, or "" for an
// empty set. Label names are validated; values are escaped per the
// exposition-format rules.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if !labelName.MatchString(l.Name) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(name, labels, help, typ string, collect func(io.Writer) error) {
	if !metricName.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.name == name && e.labels == labels {
			panic(fmt.Sprintf("telemetry: duplicate metric series %q", name+labels))
		}
		if e.name == name && e.typ != typ {
			panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, e.typ, typ))
		}
	}
	r.entries = append(r.entries, &entry{name: name, labels: labels, help: help, typ: typ, collect: collect})
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.LabeledCounter(name, help)
}

// LabeledCounter registers and returns a counter series carrying the
// given labels (e.g. one series per campaign under a shared name).
func (r *Registry) LabeledCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	series := name + renderLabels(labels)
	r.register(name, renderLabels(labels), help, "counter", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", series, c.Value())
		return err
	})
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time (e.g. an existing atomic tally).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.LabeledCounterFunc(name, help, fn)
}

// LabeledCounterFunc registers a labeled counter series whose value is
// read from fn at scrape time.
func (r *Registry) LabeledCounterFunc(name, help string, fn func() int64, labels ...Label) {
	series := name + renderLabels(labels)
	r.register(name, renderLabels(labels), help, "counter", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", series, fn())
		return err
	})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.LabeledGauge(name, help)
}

// LabeledGauge registers and returns a gauge series carrying the given
// labels.
func (r *Registry) LabeledGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	series := name + renderLabels(labels)
	r.register(name, renderLabels(labels), help, "gauge", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %s\n", series, formatFloat(g.Value()))
		return err
	})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.LabeledGaugeFunc(name, help, fn)
}

// LabeledGaugeFunc registers a labeled gauge series whose value is read
// from fn at scrape time.
func (r *Registry) LabeledGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	series := name + renderLabels(labels)
	r.register(name, renderLabels(labels), help, "gauge", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %s\n", series, formatFloat(fn()))
		return err
	})
}

// LabeledValue is one sample of a dynamically-labelled metric family:
// the label set is produced at collect time rather than registration
// time, so series can come and go with the population they describe
// (e.g. one series per live fleet member).
type LabeledValue struct {
	Labels []Label
	Value  float64
}

// GaugeVecFunc registers a gauge family whose whole sample set is
// computed by fn at scrape time. Unlike LabeledGaugeFunc — one fixed
// series per registration — the family's label values are dynamic; fn
// must return every series exactly once per scrape (duplicates would
// render an invalid exposition).
func (r *Registry) GaugeVecFunc(name, help string, fn func() []LabeledValue) {
	r.vecFunc(name, help, "gauge", fn)
}

// CounterVecFunc registers a counter family whose whole sample set is
// computed by fn at scrape time; each series' value must be monotone
// across calls.
func (r *Registry) CounterVecFunc(name, help string, fn func() []LabeledValue) {
	r.vecFunc(name, help, "counter", fn)
}

func (r *Registry) vecFunc(name, help, typ string, fn func() []LabeledValue) {
	r.register(name, "", help, typ, func(w io.Writer) error {
		for _, lv := range fn() {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(lv.Labels), formatFloat(lv.Value)); err != nil {
				return err
			}
		}
		return nil
	})
}

// Histogram registers h as a Prometheus histogram. Bucket bounds are
// the power-of-two nanosecond bounds of evalstats.Histogram converted
// to seconds (the Prometheus base unit for durations); the final
// overflow bucket exports as le="+Inf". Empty trailing buckets are
// elided — cumulative counts make them redundant — keeping scrapes
// compact.
func (r *Registry) Histogram(name, help string, h *evalstats.Histogram) {
	r.register(name, "", help, "histogram", func(w io.Writer) error {
		s := h.Snapshot()
		last := 0
		for i, n := range s.Buckets {
			if n > 0 {
				last = i
			}
		}
		var cum int64
		for i := 0; i <= last && i < evalstats.HistogramBuckets-1; i++ {
			cum += s.Buckets[i]
			le := formatFloat(evalstats.HistogramBucketBound(i).Seconds())
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(s.Sum.Seconds())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		return err
	})
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every registered metric in the text
// exposition format, in (name, labels) order. Series sharing a name are
// grouped under a single HELP/TYPE header (the first registered help
// string wins), as the exposition format requires.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels < entries[j].labels
	})
	prev := ""
	for _, e := range entries {
		if e.name != prev {
			prev = e.name
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.typ); err != nil {
				return err
			}
		}
		if err := e.collect(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns the /metrics scrape handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the header are write failures to the client;
		// nothing useful to do with them.
		_ = r.WritePrometheus(w)
	})
}
