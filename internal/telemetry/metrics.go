package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"cnnsfi/internal/evalstats"
)

// Counter is a monotone int64 metric. The zero value is ready; all
// methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down. The zero value is
// ready; all methods are safe for concurrent use and allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration (Counter/Gauge/...) is cheap but
// mutex-guarded and meant for setup time; the returned handles are the
// lock-free hot-path surface. Metric names must be unique and match the
// Prometheus grammar; violations panic, as misregistration is a
// programming error.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
}

type entry struct {
	name, help, typ string
	// collect appends the entry's samples (full lines) to w.
	collect func(w io.Writer) error
}

var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(name, help, typ string, collect func(io.Writer) error) {
	if !metricName.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.name == name {
			panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
		}
	}
	r.entries = append(r.entries, &entry{name: name, help: help, typ: typ, collect: collect})
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
		return err
	})
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time (e.g. an existing atomic tally).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(name, help, "counter", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, fn())
		return err
	})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value()))
		return err
	})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
		return err
	})
}

// Histogram registers h as a Prometheus histogram. Bucket bounds are
// the power-of-two nanosecond bounds of evalstats.Histogram converted
// to seconds (the Prometheus base unit for durations); the final
// overflow bucket exports as le="+Inf". Empty trailing buckets are
// elided — cumulative counts make them redundant — keeping scrapes
// compact.
func (r *Registry) Histogram(name, help string, h *evalstats.Histogram) {
	r.register(name, help, "histogram", func(w io.Writer) error {
		s := h.Snapshot()
		last := 0
		for i, n := range s.Buckets {
			if n > 0 {
				last = i
			}
		}
		var cum int64
		for i := 0; i <= last && i < evalstats.HistogramBuckets-1; i++ {
			cum += s.Buckets[i]
			le := formatFloat(evalstats.HistogramBucketBound(i).Seconds())
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(s.Sum.Seconds())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		return err
	})
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every registered metric in the text
// exposition format, in name order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.typ); err != nil {
			return err
		}
		if err := e.collect(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns the /metrics scrape handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the header are write failures to the client;
		// nothing useful to do with them.
		_ = r.WritePrometheus(w)
	})
}
