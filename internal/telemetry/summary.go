package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"cnnsfi/internal/evalstats"
	"cnnsfi/internal/report"
)

// StratumSummary is one stratum's replayed lifecycle.
type StratumSummary struct {
	Stratum, Layer, Bit int
	Planned             int64
	Done                int64
	Critical            int64
	Shards              int
	Dur                 time.Duration
	EarlyStopped        bool
	Margin              float64 // achieved margin, when early-stopped
	// Retried / Quarantined count the stratum's experiment_retry and
	// experiment_quarantined events (supervised campaigns only).
	Retried     int64
	Quarantined int64
}

// CampaignSummary aggregates every event of one labelled campaign.
type CampaignSummary struct {
	Campaign    string
	Seed        int64
	Fingerprint string
	Workers     int
	Planned     int64
	Restored    int64
	NumStrata   int

	// Done/Critical/Rate/Partial/EarlyStopped/Eval come from the
	// campaign_end event; Complete is false when the trace has none
	// (e.g. a crashed run), in which case they hold the last observed
	// values instead.
	Complete     bool
	Done         int64
	Critical     int64
	Elapsed      time.Duration
	Rate         float64
	Partial      bool
	EarlyStopped int
	Eval         evalstats.EvalStats
	// Retries / Quarantined are the campaign-wide supervision tallies
	// (zero on unsupervised or healthy campaigns).
	Retries     int64
	Quarantined int64

	Checkpoints int
	ShardsDone  int
	Strata      []*StratumSummary
	// WorkerBusy sums each worker's shard evaluation wall time — busy
	// time over campaign Elapsed is that worker's utilization.
	WorkerBusy map[int]time.Duration

	// FinalProgress is the campaign's final progress event, when the
	// trace recorded progress (nil otherwise). Its counters must agree
	// with the campaign_end tallies — the cross-check the trace tests
	// and `sfitrace` rely on.
	FinalProgress *Event
}

// Summary is a replayed trace: campaigns in first-seen order plus
// tracer-level bookkeeping.
type Summary struct {
	Campaigns []*CampaignSummary
	// Dropped is the lost-event count from the trace's "drops" record
	// (0 for a complete trace).
	Dropped int64
	// Events is the total number of trace lines consumed.
	Events int
}

// maxTraceLine bounds a single JSONL trace line. Quarantine events
// embed rendered panic values and checkpoint events embed paths, so a
// line can far exceed bufio.Scanner's 64KB default; 16MB is orders of
// magnitude above any event the schema can produce while still bounding
// a corrupt newline-free file.
const maxTraceLine = 16 << 20

// ReadTrace parses a JSONL trace stream strictly (every line must
// round-trip through the Event schema; see ParseEvent). Blank lines are
// permitted.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTraceLine)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		ev, err := ParseEvent(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Summarize replays a trace into per-campaign summaries. It is tolerant
// of truncated traces (campaigns without an end event report
// Complete=false with the last observed tallies).
func Summarize(events []Event) *Summary {
	s := &Summary{Events: len(events)}
	byName := map[string]*CampaignSummary{}
	campaign := func(name string) *CampaignSummary {
		c := byName[name]
		if c == nil {
			c = &CampaignSummary{Campaign: name, WorkerBusy: map[int]time.Duration{}}
			byName[name] = c
			s.Campaigns = append(s.Campaigns, c)
		}
		return c
	}
	stratum := func(c *CampaignSummary, ev Event) *StratumSummary {
		for _, st := range c.Strata {
			if st.Stratum == ev.Stratum {
				return st
			}
		}
		st := &StratumSummary{Stratum: ev.Stratum, Layer: ev.Layer, Bit: ev.Bit}
		c.Strata = append(c.Strata, st)
		return st
	}
	for i := range events {
		ev := events[i]
		if ev.Kind == KindDrops {
			s.Dropped += ev.Dropped
			continue
		}
		c := campaign(ev.Campaign)
		switch ev.Kind {
		case "campaign_start":
			c.Seed = ev.Seed
			c.Fingerprint = ev.Fingerprint
			c.Workers = ev.Workers
			c.Planned = ev.Planned
			c.Restored = ev.Restored
			c.NumStrata = ev.Strata
		case "stratum_start":
			st := stratum(c, ev)
			st.Planned = ev.StratumPlanned
			st.Done = ev.Done // restored prefix; overwritten at stratum_end
		case "shard_done":
			c.ShardsDone++
			c.WorkerBusy[ev.Worker] += time.Duration(ev.DurNS)
			stratum(c, ev).Shards++
		case "experiment_retry":
			stratum(c, ev).Retried++
		case "experiment_quarantined":
			stratum(c, ev).Quarantined++
		case "stratum_end":
			st := stratum(c, ev)
			st.Layer = ev.Layer
			st.Bit = ev.Bit
			st.Planned = ev.StratumPlanned
			st.Done = ev.Done
			st.Critical = ev.Critical
			st.Dur = time.Duration(ev.DurNS)
		case "early_stop":
			st := stratum(c, ev)
			st.EarlyStopped = true
			st.Margin = ev.Margin
		case "checkpoint":
			c.Checkpoints++
		case KindPartMeta:
			// Correlation prologue of a federated part (or a spliced
			// merged trace): identity only, nothing to tally.
		case "campaign_end":
			c.Complete = true
			c.Done = ev.Done
			c.Critical = ev.Critical
			c.Elapsed = time.Duration(ev.ElapsedNS)
			c.Rate = ev.Rate
			c.Partial = ev.Partial
			c.EarlyStopped = ev.EarlyStopped
			c.Retries = ev.Retries
			c.Quarantined = ev.Quarantined
			c.Eval = ev.Eval()
		case KindProgress:
			if ev.Final {
				c.FinalProgress = &events[i]
			}
			if !c.Complete {
				c.Done = ev.Done
				c.Critical = ev.Critical
				c.Elapsed = time.Duration(ev.ElapsedNS)
				c.Retries = ev.Retries
				c.Quarantined = ev.Quarantined
			}
		}
	}
	for _, c := range s.Campaigns {
		sort.Slice(c.Strata, func(i, j int) bool { return c.Strata[i].Stratum < c.Strata[j].Stratum })
	}
	return s
}

// WriteReport renders the summary as a human-readable report. With
// stripTiming set, wall-clock durations, rates, and scheduling detail
// (shard and checkpoint counts, arena levels, worker utilization, the
// event total) render as "-" or are omitted, so the output is a
// deterministic function of (plan, seed) alone — identical across
// worker counts and across a federated split versus a single-node run.
// That invariance is what the golden tests, `make trace-smoke`, and the
// federation-smoke merged-trace diff all rely on.
func (s *Summary) WriteReport(w io.Writer, stripTiming bool) {
	dur := func(d time.Duration) string {
		if stripTiming {
			return "-"
		}
		return d.Round(time.Microsecond).String()
	}
	count := func(n int) string {
		if stripTiming {
			return "-"
		}
		return strconv.Itoa(n)
	}
	for _, c := range s.Campaigns {
		// The worker count is scheduling detail too: stripping it keeps
		// the report identical across worker counts and fleet shapes.
		fmt.Fprintf(w, "campaign %q — seed %d, fingerprint %s, workers %s\n",
			c.Campaign, c.Seed, c.Fingerprint, count(c.Workers))
		status := "complete"
		switch {
		case !c.Complete:
			status = "truncated trace (no campaign_end)"
		case c.Partial:
			status = "partial (cancelled)"
		}
		fmt.Fprintf(w, "  status: %s\n", status)
		fmt.Fprintf(w, "  injections: %s done / %s planned (%s restored from checkpoint)\n",
			report.Comma(c.Done), report.Comma(c.Planned), report.Comma(c.Restored))
		pct := "n/a"
		if c.Done > 0 {
			pct = report.Pct(float64(c.Critical) / float64(c.Done))
		}
		fmt.Fprintf(w, "  critical: %s (%s)\n", report.Comma(c.Critical), pct)
		// Arena bytes is a level, not a tally: it reflects worker count
		// and shard geometry, so the stripped report hides it.
		arena := report.Comma(c.Eval.ArenaBytes)
		if stripTiming {
			arena = "-"
		}
		fmt.Fprintf(w, "  eval: %s masked skips, %s evaluated, %s early exits, %s arena bytes\n",
			report.Comma(c.Eval.Skipped), report.Comma(c.Eval.Evaluated),
			report.Comma(c.Eval.EarlyExits), arena)
		if stripTiming {
			fmt.Fprintf(w, "  wall: -, rate: - inj/s\n")
		} else {
			fmt.Fprintf(w, "  wall: %s, rate: %.0f inj/s\n", dur(c.Elapsed), c.Rate)
		}
		fmt.Fprintf(w, "  strata: %d planned, %d early-stopped; %s shards, %s checkpoints\n",
			c.NumStrata, c.EarlyStopped, count(c.ShardsDone), count(c.Checkpoints))
		// Rendered only for supervised campaigns that actually retried or
		// quarantined work, so healthy-campaign goldens stay byte-stable.
		if c.Retries > 0 || c.Quarantined > 0 {
			fmt.Fprintf(w, "  supervision: %s failed attempts retried, %s draws quarantined (excluded from the tally)\n",
				report.Comma(c.Retries), report.Comma(c.Quarantined))
		}

		if len(c.Strata) > 0 {
			t := report.NewTable("", "stratum", "layer", "bit", "planned", "done", "critical", "shards", "wall", "note")
			for _, st := range c.Strata {
				var notes []string
				if st.EarlyStopped {
					notes = append(notes, fmt.Sprintf("early stop @ margin %.4f", st.Margin))
				}
				if st.Quarantined > 0 {
					notes = append(notes, fmt.Sprintf("%d quarantined (margin over reduced n)", st.Quarantined))
				}
				t.AddRow(st.Stratum, st.Layer, st.Bit, st.Planned, st.Done, st.Critical, count(st.Shards), dur(st.Dur), strings.Join(notes, "; "))
			}
			t.Render(w)
		}

		// Which workers existed and how busy they were is pure
		// scheduling detail; the stripped report omits the whole block.
		if len(c.WorkerBusy) > 0 && !stripTiming {
			workers := make([]int, 0, len(c.WorkerBusy))
			for wk := range c.WorkerBusy {
				workers = append(workers, wk)
			}
			sort.Ints(workers)
			fmt.Fprintf(w, "  worker utilization (busy evaluating / campaign wall):\n")
			for _, wk := range workers {
				util := 0.0
				if c.Elapsed > 0 {
					util = float64(c.WorkerBusy[wk]) / float64(c.Elapsed)
				}
				fmt.Fprintf(w, "    worker %d: busy %s (%s)\n", wk, dur(c.WorkerBusy[wk]), report.Pct(util))
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%s events", count(s.Events))
	if s.Dropped > 0 {
		fmt.Fprintf(w, ", %d DROPPED (trace is incomplete)", s.Dropped)
	}
	fmt.Fprintln(w)
}
