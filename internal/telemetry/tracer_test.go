package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"cnnsfi/internal/core"
)

// blockingWriter blocks every Write until released, simulating a
// stalled disk.
type blockingWriter struct {
	release chan struct{}
	once    sync.Once
	buf     bytes.Buffer
	mu      sync.Mutex
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *blockingWriter) Release() { w.once.Do(func() { close(w.release) }) }

func (w *blockingWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// wedgeEvent is an event whose encoded line exceeds the tracer's
// internal bufio buffer, so a stalled underlying writer back-pressures
// the writer goroutine immediately instead of being absorbed by the
// buffer — making the drop-policy tests deterministic.
func wedgeEvent(shard int) core.TraceEvent {
	return core.TraceEvent{Kind: core.TraceCheckpoint, Shard: shard,
		Path: strings.Repeat("x", 8192)}
}

// TestTracerDropPolicy pins the contract: a stalled writer drops
// interior events (counted, never blocking the emitter), and Close
// records the loss in the trace itself.
func TestTracerDropPolicy(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	tr := NewTracer(w, 1)
	sink := tr.Sink("stall")

	// The writer goroutine wedges on whichever event it picks up first;
	// at most one more sits in the 1-slot buffer, and the rest must be
	// dropped — synchronously, without ever blocking the emitter.
	for i := 0; i < 10; i++ {
		sink(wedgeEvent(i))
	}
	if tr.Dropped() == 0 {
		t.Fatal("no drops despite stalled writer and full buffer")
	}

	w.Release()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	events, err := ReadTrace(strings.NewReader(w.String()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	last := events[len(events)-1]
	if last.Kind != KindDrops {
		t.Fatalf("last event kind = %q, want %q", last.Kind, KindDrops)
	}
	if last.Dropped != tr.Dropped() {
		t.Errorf("drops event count = %d, want %d", last.Dropped, tr.Dropped())
	}
	if got := int64(len(events)-1) + last.Dropped; got != 10 {
		t.Errorf("written + dropped = %d, want 10", got)
	}
}

// TestTracerTerminalEventsNeverDrop: campaign_end and final progress
// block for buffer space rather than dropping.
func TestTracerTerminalEventsNeverDrop(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	tr := NewTracer(w, 1)

	// Saturate: the writer goroutine wedges on the first oversized
	// event it picks up, and the 1-slot buffer fills behind it.
	tr.Sink("c")(wedgeEvent(0))
	tr.Sink("c")(wedgeEvent(1))

	finals := make(chan struct{})
	go func() {
		tr.Sink("c")(core.TraceEvent{Kind: core.TraceCampaignEnd, Done: 42})
		tr.Progress("c")(core.Progress{Final: true, Done: 42})
		close(finals)
	}()
	select {
	case <-finals:
		t.Fatal("terminal emits returned while the buffer was saturated (would have been dropped)")
	case <-time.After(50 * time.Millisecond):
	}

	w.Release()
	select {
	case <-finals:
	case <-time.After(5 * time.Second):
		t.Fatal("terminal emits still blocked after writer drained")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	events, err := ReadTrace(strings.NewReader(w.String()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	var sawEnd, sawFinal bool
	for _, ev := range events {
		if ev.Kind == "campaign_end" && ev.Done == 42 {
			sawEnd = true
		}
		if ev.Kind == KindProgress && ev.Final {
			sawFinal = true
		}
	}
	if !sawEnd || !sawFinal {
		t.Errorf("terminal events lost: campaign_end=%v final_progress=%v", sawEnd, sawFinal)
	}
}

func TestTracerEmitAfterCloseDropsQuietly(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 8)
	sink := tr.Sink("c")
	sink(core.TraceEvent{Kind: core.TraceCampaignStart})
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	before := tr.Dropped()
	sink(core.TraceEvent{Kind: core.TraceShardDone}) // must not panic
	if got := tr.Dropped(); got != before+1 {
		t.Errorf("post-Close emit: dropped = %d, want %d", got, before+1)
	}
	if err := tr.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
}

// TestEventRoundTrip pins the schema contract: every written line
// re-marshals to identical bytes after ParseEvent, and unknown fields
// or kinds are rejected.
func TestEventRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 64)
	sink, prog := tr.Sink("rt"), tr.Progress("rt")
	sink(core.TraceEvent{
		Kind: core.TraceCampaignStart, Time: time.Unix(1, 2), Elapsed: time.Millisecond,
		Seed: 42, Fingerprint: 0xdeadbeef, Workers: 3, Planned: 1000, Strata: 7,
		Stratum: -1, Layer: -1, Bit: -1, Shard: -1, Worker: -1,
	})
	sink(core.TraceEvent{Kind: core.TraceShardDone, Stratum: 2, Shard: 5, Worker: 1,
		Injections: 128, Dur: 3 * time.Millisecond, Layer: -1, Bit: -1})
	sink(core.TraceEvent{Kind: core.TraceEarlyStop, Stratum: 0, Done: 211, Critical: 3,
		Margin: 0.0099, Layer: -1, Bit: -1, Shard: -1, Worker: -1})
	prog(core.Progress{Done: 500, Planned: 1000, Critical: 9, Stratum: 2, Final: true})
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	for _, line := range lines {
		ev, err := ParseEvent([]byte(line))
		if err != nil {
			t.Fatalf("ParseEvent(%s): %v", line, err)
		}
		re, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		if string(re) != line {
			t.Errorf("round trip mismatch:\n in: %s\nout: %s", line, re)
		}
	}

	if fp := mustParse(t, lines[0]).Fingerprint; fp != "00000000deadbeef" {
		t.Errorf("fingerprint = %q, want zero-padded hex", fp)
	}

	if _, err := ParseEvent([]byte(`{"kind":"progress","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseEvent([]byte(`{"kind":"nonsense"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ParseEvent([]byte(`not json`)); err == nil {
		t.Error("non-JSON line accepted")
	}
}

func mustParse(t *testing.T, line string) Event {
	t.Helper()
	ev, err := ParseEvent([]byte(line))
	if err != nil {
		t.Fatal(err)
	}
	return ev
}
