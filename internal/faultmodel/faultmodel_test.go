package faultmodel

import (
	"testing"
	"testing/quick"
)

var resnet20Params = []int{
	432,
	2304, 2304, 2304, 2304, 2304, 2304,
	4608,
	9216, 9216, 9216, 9216, 9216,
	18432,
	36864, 36864, 36864, 36864, 36864,
	640,
}

func TestStuckAtPopulationMatchesTableI(t *testing.T) {
	s := NewStuckAt(resnet20Params, 32)
	// Exhaustive column of Table I: params × 32 × 2 per layer.
	wantLayer := []int64{27648, 147456, 147456, 147456, 147456, 147456, 147456,
		294912, 589824, 589824, 589824, 589824, 589824, 1179648,
		2359296, 2359296, 2359296, 2359296, 2359296, 40960}
	for l, want := range wantLayer {
		if got := s.LayerTotal(l); got != want {
			t.Errorf("layer %d population = %d, want %d", l, got, want)
		}
	}
	// The paper's total is 17,174,144 with its layer-11 typo (9,226
	// params); the standard architecture gives 17,173,504.
	if got := s.Total(); got != 17173504 {
		t.Errorf("total population = %d, want 17,173,504", got)
	}
}

func TestBitLayerTotal(t *testing.T) {
	s := NewStuckAt(resnet20Params, 32)
	if got := s.BitLayerTotal(0); got != 864 { // 432 × 2
		t.Errorf("N_(i,0) = %d, want 864", got)
	}
	flip := NewBitFlip(resnet20Params, 32)
	if got := flip.BitLayerTotal(0); got != 432 {
		t.Errorf("transient N_(i,0) = %d, want 432", got)
	}
}

func TestBitLayerFaultDecoding(t *testing.T) {
	s := NewStuckAt([]int{10}, 32)
	f := s.BitLayerFault(0, 5, 0)
	if f != (Fault{Layer: 0, Param: 0, Bit: 5, Model: StuckAt0}) {
		t.Errorf("first fault = %v", f)
	}
	f = s.BitLayerFault(0, 5, 1)
	if f.Model != StuckAt1 || f.Param != 0 {
		t.Errorf("second fault = %v", f)
	}
	f = s.BitLayerFault(0, 5, 19)
	if f.Param != 9 || f.Model != StuckAt1 {
		t.Errorf("last fault = %v", f)
	}
}

func TestLayerFaultCoversAllBits(t *testing.T) {
	s := NewStuckAt([]int{3}, 4) // tiny: 3 params × 4 bits × 2 = 24 faults
	seen := make(map[Fault]bool)
	for j := int64(0); j < s.LayerTotal(0); j++ {
		f := s.LayerFault(0, j)
		if err := s.Validate(f); err != nil {
			t.Fatalf("invalid fault at %d: %v", j, err)
		}
		if seen[f] {
			t.Fatalf("duplicate fault %v at index %d", f, j)
		}
		seen[f] = true
	}
	if len(seen) != 24 {
		t.Errorf("enumerated %d distinct faults, want 24", len(seen))
	}
}

func TestGlobalFaultRoundTrip(t *testing.T) {
	s := NewStuckAt([]int{5, 7, 3}, 8)
	total := s.Total()
	if total != (5+7+3)*8*2 {
		t.Fatalf("total = %d", total)
	}
	for g := int64(0); g < total; g++ {
		f := s.GlobalFault(g)
		if back := s.GlobalIndex(f); back != g {
			t.Fatalf("round trip %d -> %v -> %d", g, f, back)
		}
	}
}

func TestGlobalFaultRoundTripProperty(t *testing.T) {
	s := NewStuckAt(resnet20Params, 32)
	total := s.Total()
	f := func(raw uint64) bool {
		g := int64(raw % uint64(total))
		fault := s.GlobalFault(g)
		return s.Validate(fault) == nil && s.GlobalIndex(fault) == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnOutOfRange(t *testing.T) {
	s := NewStuckAt([]int{4}, 8)
	cases := []func(){
		func() { s.BitLayerFault(0, 8, 0) },
		func() { s.BitLayerFault(0, 0, 8) },
		func() { s.LayerFault(0, 64) },
		func() { s.GlobalFault(64) },
		func() { s.GlobalFault(-1) },
		func() { s.GlobalIndex(Fault{Model: BitFlip}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestValidate(t *testing.T) {
	s := NewStuckAt([]int{4, 6}, 16)
	good := Fault{Layer: 1, Param: 5, Bit: 15, Model: StuckAt1}
	if err := s.Validate(good); err != nil {
		t.Errorf("valid fault rejected: %v", err)
	}
	bad := []Fault{
		{Layer: 2, Param: 0, Bit: 0, Model: StuckAt0},
		{Layer: 0, Param: 4, Bit: 0, Model: StuckAt0},
		{Layer: 0, Param: 0, Bit: 16, Model: StuckAt0},
		{Layer: 0, Param: 0, Bit: 0, Model: BitFlip},
		{Layer: -1, Param: 0, Bit: 0, Model: StuckAt0},
	}
	for i, f := range bad {
		if err := s.Validate(f); err == nil {
			t.Errorf("invalid fault %d accepted: %v", i, f)
		}
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Layer: 3, Param: 142, Bit: 30, Model: StuckAt1}
	if got := f.String(); got != "L3.w142.b30.sa1" {
		t.Errorf("String = %q", got)
	}
	if StuckAt0.String() != "sa0" || BitFlip.String() != "flip" || Model(9).String() != "unknown" {
		t.Error("model names wrong")
	}
}

func TestMobileNetV2PopulationSize(t *testing.T) {
	// 54 layers totalling 2,203,584 params → 141,029,376 faults.
	params := make([]int, 54)
	// Only the total matters for this check; spread arbitrarily.
	remain := 2203584
	for i := range params {
		params[i] = remain / (54 - i)
		remain -= params[i]
	}
	s := NewStuckAt(params, 32)
	if got := s.Total(); got != 141029376 {
		t.Errorf("population = %d, want 141,029,376", got)
	}
}
