// Package faultmodel defines the fault universes of the paper and the
// deterministic indexing used to enumerate and sample them.
//
// The paper's fault model is permanent stuck-at faults on the static
// parameters (weights) of a CNN: for every weight bit there are exactly
// two faults (stuck-at-0 and stuck-at-1), so a network with W weights in
// I-bit representation has a population of N = W·I·2 faults (e.g.
// ResNet-20: 268,336 × 32 × 2 ≈ 17.2M; MobileNetV2: 2,203,584 × 32 × 2 =
// 141,029,376). Transient single-bit-flips (one fault per bit) are also
// supported as an extension.
//
// Faults are addressed by a (layer, param, bit, model) tuple, and each
// subpopulation (the whole network, one layer, or one bit position
// within one layer — the granularities of the paper's four SFI
// approaches) has a dense [0, size) index space so that uniform sampling
// without replacement reduces to sampling integers.
package faultmodel

import "fmt"

// Model enumerates the supported fault types.
type Model uint8

// Fault models.
const (
	// StuckAt0 permanently forces the bit to logic 0.
	StuckAt0 Model = iota
	// StuckAt1 permanently forces the bit to logic 1.
	StuckAt1
	// BitFlip transiently inverts the bit (single-event upset).
	BitFlip
)

// String names the fault model.
func (m Model) String() string {
	switch m {
	case StuckAt0:
		return "sa0"
	case StuckAt1:
		return "sa1"
	case BitFlip:
		return "flip"
	default:
		return "unknown"
	}
}

// Fault identifies a single fault: the weight-layer index (the paper's
// layer numbering), the parameter index within the layer's flat weight
// storage, the bit position (0 = LSB), and the fault model.
type Fault struct {
	Layer int
	Param int
	Bit   int
	Model Model
}

// String renders the fault like "L3.w142.b30.sa1".
func (f Fault) String() string {
	return fmt.Sprintf("L%d.w%d.b%d.%s", f.Layer, f.Param, f.Bit, f.Model)
}

// Space is a fault universe over a network's weight layers: the cross
// product of parameters × bit positions × fault variants, organized into
// the subpopulations the SFI approaches sample from.
type Space struct {
	// LayerParams is the number of weights in each layer (the
	// "Parameters" column of Table I).
	LayerParams []int
	// Bits is the representation width (32 for the paper's FP32).
	Bits int
	// Variants are the fault models applied to every bit: both stuck-at
	// faults for the permanent model, or a single BitFlip for the
	// transient extension.
	Variants []Model
}

// NewStuckAt returns the paper's permanent-fault universe (stuck-at-0
// and stuck-at-1 on every bit).
func NewStuckAt(layerParams []int, bits int) Space {
	return Space{LayerParams: layerParams, Bits: bits, Variants: []Model{StuckAt0, StuckAt1}}
}

// NewBitFlip returns the transient single-bit-flip universe.
func NewBitFlip(layerParams []int, bits int) Space {
	return Space{LayerParams: layerParams, Bits: bits, Variants: []Model{BitFlip}}
}

// NumLayers returns the number of weight layers.
func (s Space) NumLayers() int { return len(s.LayerParams) }

// variantsPerBit returns the number of fault variants per bit position.
func (s Space) variantsPerBit() int64 { return int64(len(s.Variants)) }

// Total returns the full population size N: Σ_l params(l)·Bits·variants.
func (s Space) Total() int64 {
	var total int64
	for l := range s.LayerParams {
		total += s.LayerTotal(l)
	}
	return total
}

// LayerTotal returns N_l, the population size of layer l.
func (s Space) LayerTotal(l int) int64 {
	return int64(s.LayerParams[l]) * int64(s.Bits) * s.variantsPerBit()
}

// BitLayerTotal returns N_(i,l), the subpopulation size of one bit
// position within layer l: params(l)·variants. For the stuck-at model
// this is the paper's "number of weights in that layer multiplied by 2".
func (s Space) BitLayerTotal(l int) int64 {
	return int64(s.LayerParams[l]) * s.variantsPerBit()
}

// BitLayerFault decodes index j ∈ [0, BitLayerTotal(l)) of the
// (bit i, layer l) subpopulation into a concrete fault.
func (s Space) BitLayerFault(l, bit int, j int64) Fault {
	if bit < 0 || bit >= s.Bits {
		panic(fmt.Sprintf("faultmodel: bit %d out of range", bit))
	}
	v := s.variantsPerBit()
	if j < 0 || j >= s.BitLayerTotal(l) {
		panic(fmt.Sprintf("faultmodel: index %d out of bit-layer subpopulation", j))
	}
	return Fault{Layer: l, Param: int(j / v), Bit: bit, Model: s.Variants[j%v]}
}

// LayerFault decodes index j ∈ [0, LayerTotal(l)) of layer l's population
// into a concrete fault. The index runs fastest over variants, then
// parameters, then bits.
func (s Space) LayerFault(l int, j int64) Fault {
	if j < 0 || j >= s.LayerTotal(l) {
		panic(fmt.Sprintf("faultmodel: index %d out of layer population", j))
	}
	perBit := s.BitLayerTotal(l)
	bit := int(j / perBit)
	return s.BitLayerFault(l, bit, j%perBit)
}

// GlobalFault decodes index g ∈ [0, Total()) of the whole-network
// population into a concrete fault. Layers are laid out consecutively.
func (s Space) GlobalFault(g int64) Fault {
	if g < 0 {
		panic("faultmodel: negative global index")
	}
	for l := range s.LayerParams {
		n := s.LayerTotal(l)
		if g < n {
			return s.LayerFault(l, g)
		}
		g -= n
	}
	panic("faultmodel: global index out of population")
}

// GlobalIndex is the inverse of GlobalFault.
func (s Space) GlobalIndex(f Fault) int64 {
	var base int64
	for l := 0; l < f.Layer; l++ {
		base += s.LayerTotal(l)
	}
	v := s.variantsPerBit()
	perBit := s.BitLayerTotal(f.Layer)
	var variant int64 = -1
	for i, m := range s.Variants {
		if m == f.Model {
			variant = int64(i)
			break
		}
	}
	if variant < 0 {
		panic(fmt.Sprintf("faultmodel: model %v not in space", f.Model))
	}
	return base + int64(f.Bit)*perBit + int64(f.Param)*v + variant
}

// Validate reports whether the fault addresses a real location in the
// space.
func (s Space) Validate(f Fault) error {
	if f.Layer < 0 || f.Layer >= len(s.LayerParams) {
		return fmt.Errorf("faultmodel: layer %d out of range [0,%d)", f.Layer, len(s.LayerParams))
	}
	if f.Param < 0 || f.Param >= s.LayerParams[f.Layer] {
		return fmt.Errorf("faultmodel: param %d out of range for layer %d", f.Param, f.Layer)
	}
	if f.Bit < 0 || f.Bit >= s.Bits {
		return fmt.Errorf("faultmodel: bit %d out of range [0,%d)", f.Bit, s.Bits)
	}
	for _, m := range s.Variants {
		if m == f.Model {
			return nil
		}
	}
	return fmt.Errorf("faultmodel: model %v not part of this space", f.Model)
}
