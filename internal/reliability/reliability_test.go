package reliability

import (
	"math"
	"testing"

	"cnnsfi/internal/core"
	"cnnsfi/internal/models"
	"cnnsfi/internal/oracle"
	"cnnsfi/internal/stats"
)

func smallResult(t testing.TB) *core.Result {
	t.Helper()
	o := oracle.New(models.SmallCNN(1), oracle.DefaultConfig(3))
	plan := core.PlanDataUnaware(o.Space(), stats.DefaultConfig())
	return core.Run(o, plan, 0)
}

func TestAssessBasicInvariants(t *testing.T) {
	res := smallResult(t)
	cfg := SERConfig{RawFITPerBit: 1e-4}
	rep, err := Assess(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bits) != 32 {
		t.Fatalf("bit contributions = %d", len(rep.Bits))
	}
	// 1,708 weights × 32 bit positions of cells in total.
	if rep.TotalCells != 1708*32 {
		t.Errorf("total cells = %d, want %d", rep.TotalCells, 1708*32)
	}
	// Total FIT is the sum of contributions, sorted descending.
	var sum float64
	for i, bc := range rep.Bits {
		sum += bc.FIT
		if bc.FIT < 0 || bc.CriticalProbability < 0 || bc.CriticalProbability > 1 {
			t.Errorf("bit %d: implausible contribution %+v", bc.Bit, bc)
		}
		if i > 0 && rep.Bits[i-1].FIT < bc.FIT {
			t.Error("contributions not sorted")
		}
	}
	if math.Abs(sum-rep.SDCFIT) > 1e-12 {
		t.Errorf("FIT sum %v != total %v", sum, rep.SDCFIT)
	}
	// The upper bound: every upset critical.
	if rep.SDCFIT >= cfg.RawFITPerBit*float64(rep.TotalCells) {
		t.Error("SDC FIT should be below the raw upset rate")
	}
}

// TestExponentMSBDominatesFIT: the actionable insight — one bit position
// carries essentially all of the SDC FIT.
func TestExponentMSBDominatesFIT(t *testing.T) {
	res := smallResult(t)
	rep, err := Assess(res, SERConfig{RawFITPerBit: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bits[0].Bit != 30 {
		t.Fatalf("dominant bit = %d, want 30", rep.Bits[0].Bit)
	}
	if rep.Bits[0].FIT < 0.9*rep.SDCFIT {
		t.Errorf("bit 30 carries %.1f%% of the FIT, want ≥ 90%%",
			rep.Bits[0].FIT/rep.SDCFIT*100)
	}
}

func TestSelectiveProtection(t *testing.T) {
	res := smallResult(t)
	rep, _ := Assess(res, SERConfig{RawFITPerBit: 1e-4})

	// Protecting the best single bit removes ≥ 90% of the FIT at ~3%
	// overhead (1 cell of 32 per weight).
	p1 := rep.BestProtection(1)
	if len(p1.Bits) != 1 || p1.Bits[0] != 30 {
		t.Fatalf("best single protection = %v", p1.Bits)
	}
	residual := rep.ResidualFIT(p1)
	if residual > 0.1*rep.SDCFIT {
		t.Errorf("residual FIT %v not ≤ 10%% of %v", residual, rep.SDCFIT)
	}
	overhead := rep.ProtectionOverhead(p1)
	if math.Abs(overhead-1.0/32) > 1e-9 {
		t.Errorf("overhead = %v, want 1/32", overhead)
	}

	// Protecting everything removes all FIT at full overhead.
	all := rep.BestProtection(32)
	if got := rep.ResidualFIT(all); got > 1e-15 {
		t.Errorf("fully protected residual = %v", got)
	}
	// No protection changes nothing.
	if rep.ResidualFIT(Protection{}) != rep.SDCFIT {
		t.Error("empty protection altered the FIT")
	}
}

func TestBestProtectionSkipsZeroContributions(t *testing.T) {
	res := smallResult(t)
	rep, _ := Assess(res, SERConfig{RawFITPerBit: 1e-4})
	p := rep.BestProtection(32)
	// Mantissa LSB strata observe zero criticals; they must not be
	// "protected" pointlessly.
	if len(p.Bits) == 32 {
		t.Error("protection should stop at zero-FIT bits")
	}
}

func TestAssessRejectsCoarsePlans(t *testing.T) {
	o := oracle.New(models.SmallCNN(1), oracle.DefaultConfig(3))
	res := core.Run(o, core.PlanLayerWise(o.Space(), stats.DefaultConfig()), 0)
	if _, err := Assess(res, SERConfig{RawFITPerBit: 1e-4}); err == nil {
		t.Error("layer-wise plan accepted")
	}
}

func TestAssessRejectsBadConfig(t *testing.T) {
	res := smallResult(t)
	if _, err := Assess(res, SERConfig{}); err == nil {
		t.Error("zero FIT/bit accepted")
	}
}

func TestMissionReliability(t *testing.T) {
	// Zero FIT → certain survival.
	if got := MissionReliability(0, 1e6); got != 1 {
		t.Errorf("R(0) = %v", got)
	}
	// 1000 FIT over 10⁶ hours: exp(-1e-3·1e3)= exp(-1) ≈ 0.3679.
	if got := MissionReliability(1000, 1e6); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Errorf("R = %v", got)
	}
	// Monotone decreasing in time.
	if MissionReliability(10, 2e6) >= MissionReliability(10, 1e6) {
		t.Error("reliability should decrease with mission length")
	}
}

func TestRequiredFITRoundTrip(t *testing.T) {
	const hours = 50000 // a vehicle lifetime
	fit := RequiredFIT(0.999, hours)
	if got := MissionReliability(fit, hours); math.Abs(got-0.999) > 1e-12 {
		t.Errorf("round trip = %v", got)
	}
}

func TestRequiredFITPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { RequiredFIT(0, 100) },
		func() { RequiredFIT(1, 100) },
		func() { RequiredFIT(0.99, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad RequiredFIT input did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestMarginFIT(t *testing.T) {
	res := smallResult(t)
	cfg := SERConfig{RawFITPerBit: 1e-4}
	rep, _ := Assess(res, cfg)
	m := MarginFIT(res, cfg, stats.DefaultConfig())
	if m <= 0 {
		t.Fatalf("margin FIT = %v", m)
	}
	// The uncertainty must be a modest fraction of the worst case but
	// can exceed the point estimate when most strata observe zero.
	if m >= cfg.RawFITPerBit*float64(rep.TotalCells) {
		t.Errorf("margin FIT %v exceeds the raw bound", m)
	}
}
