// Package reliability converts the critical-fault proportions measured
// by SFI campaigns into the system-level reliability metrics that
// safety standards such as ISO 26262 reason about, and models the
// selective-protection what-if scenarios those numbers motivate.
//
// The paper's context: CNN weights are static data held in memory, the
// dominant contributor of soft errors in accelerator-class devices when
// no ECC is present. Given a raw per-bit upset rate (FIT/bit — failures
// in time per 10⁹ device-hours) and a campaign's estimate of the
// probability that a weight-bit fault becomes a critical failure, the
// silent-data-corruption FIT of the deployed network is
//
//	FIT_SDC = Σ_bits rawFIT · P(critical | upset at that bit),
//
// which the bit-granular SFI approaches estimate per (bit, layer)
// stratum. Selective protection (parity + reload, ECC, or bit
// hardening) of the most critical bit positions removes their
// contribution at a cost proportional to the number of protected cells;
// because criticality is concentrated in one or two exponent bits
// (Fig. 4), protecting 1/32 of the memory eliminates almost all of the
// SDC FIT — the actionable conclusion the paper's analysis enables.
package reliability

import (
	"fmt"
	"math"
	"sort"

	"cnnsfi/internal/core"
	"cnnsfi/internal/stats"
)

// SERConfig describes the raw soft-error behaviour of the weight memory.
type SERConfig struct {
	// RawFITPerBit is the raw upset rate of one memory bit in FIT
	// (failures per 10⁹ hours). Typical 28-65 nm SRAM figures are
	// 1e-5 .. 1e-3 FIT/bit at sea level.
	RawFITPerBit float64
}

// BitContribution is one bit position's share of the SDC FIT.
type BitContribution struct {
	// Bit is the bit position (0 = LSB).
	Bit int
	// Cells is the number of memory cells at this bit position (one
	// per weight).
	Cells int64
	// CriticalProbability is the estimated P(critical | upset).
	CriticalProbability float64
	// FIT is the bit position's contribution to the SDC rate.
	FIT float64
}

// Report is the reliability assessment derived from a bit-granular
// campaign result.
type Report struct {
	// Config echoes the raw soft-error assumption.
	Config SERConfig
	// TotalCells is the total number of weight bits in the network.
	TotalCells int64
	// SDCFIT is the estimated silent-data-corruption rate of the
	// unprotected network, in FIT.
	SDCFIT float64
	// Bits holds the per-bit-position breakdown, sorted by FIT
	// contribution (largest first).
	Bits []BitContribution
}

// Assess derives the reliability report from a bit-granular campaign
// result (data-unaware or data-aware). Each (bit, layer) stratum
// contributes rawFIT · cells · p̂ to the total. It returns an error for
// plans without bit granularity, mirroring the paper's argument that
// coarser campaigns cannot answer bit-level questions.
func Assess(res *core.Result, cfg SERConfig) (*Report, error) {
	plan := res.Plan
	if plan.Approach != core.DataUnaware && plan.Approach != core.DataAware {
		return nil, fmt.Errorf("reliability: %s campaigns have no per-bit estimates; use a bit-granular plan", plan.Approach)
	}
	if cfg.RawFITPerBit <= 0 {
		return nil, fmt.Errorf("reliability: raw FIT/bit must be positive, got %v", cfg.RawFITPerBit)
	}

	perBit := make(map[int]*BitContribution)
	for i, sub := range plan.Subpops {
		est := res.Estimates[i]
		bc := perBit[sub.Bit]
		if bc == nil {
			bc = &BitContribution{Bit: sub.Bit}
			perBit[sub.Bit] = bc
		}
		// One memory cell per weight at this bit position; the stratum's
		// population additionally counts fault variants (sa0 + sa1).
		nCells := int64(plan.Space.LayerParams[sub.Layer])
		bc.Cells += nCells
		// Weight the stratum's criticality by its cell count.
		bc.CriticalProbability += est.PHat() * float64(nCells)
	}

	rep := &Report{Config: cfg}
	for _, bc := range perBit {
		bc.CriticalProbability /= float64(bc.Cells)
		bc.FIT = cfg.RawFITPerBit * float64(bc.Cells) * bc.CriticalProbability
		rep.TotalCells += bc.Cells
		rep.SDCFIT += bc.FIT
		rep.Bits = append(rep.Bits, *bc)
	}
	sort.Slice(rep.Bits, func(i, j int) bool {
		if rep.Bits[i].FIT != rep.Bits[j].FIT {
			return rep.Bits[i].FIT > rep.Bits[j].FIT
		}
		return rep.Bits[i].Bit > rep.Bits[j].Bit
	})
	return rep, nil
}

// Protection is a selective-protection scenario: the listed bit
// positions of every weight are protected (assumed to mask all their
// upsets, as parity-plus-reload does for read-only data).
type Protection struct {
	// Bits are the protected bit positions.
	Bits []int
}

// ResidualFIT returns the SDC FIT remaining after protection.
func (r *Report) ResidualFIT(p Protection) float64 {
	protected := make(map[int]bool, len(p.Bits))
	for _, b := range p.Bits {
		protected[b] = true
	}
	var fit float64
	for _, bc := range r.Bits {
		if !protected[bc.Bit] {
			fit += bc.FIT
		}
	}
	return fit
}

// ProtectionOverhead returns the fraction of memory cells covered by the
// protection — its storage/energy cost proxy.
func (r *Report) ProtectionOverhead(p Protection) float64 {
	if r.TotalCells == 0 {
		return 0
	}
	protected := make(map[int]bool, len(p.Bits))
	for _, b := range p.Bits {
		protected[b] = true
	}
	var cells int64
	for _, bc := range r.Bits {
		if protected[bc.Bit] {
			cells += bc.Cells
		}
	}
	return float64(cells) / float64(r.TotalCells)
}

// BestProtection greedily selects up to maxBits bit positions, largest
// FIT contribution first — optimal here because contributions are
// independent and the per-bit cost is uniform.
func (r *Report) BestProtection(maxBits int) Protection {
	var bits []int
	for i := 0; i < len(r.Bits) && i < maxBits; i++ {
		if r.Bits[i].FIT <= 0 {
			break
		}
		bits = append(bits, r.Bits[i].Bit)
	}
	return Protection{Bits: bits}
}

// MissionReliability returns exp(−FIT·hours/10⁹): the probability of
// surviving a mission of the given duration without a silent data
// corruption, under a constant-rate (exponential) failure model.
func MissionReliability(fit, hours float64) float64 {
	return math.Exp(-fit * hours / 1e9)
}

// RequiredFIT inverts MissionReliability: the maximum tolerable SDC FIT
// for a target survival probability over the mission duration. It
// panics if the target is outside (0, 1) or hours is non-positive.
func RequiredFIT(targetReliability, hours float64) float64 {
	if targetReliability <= 0 || targetReliability >= 1 {
		panic(fmt.Sprintf("reliability: target %v outside (0,1)", targetReliability))
	}
	if hours <= 0 {
		panic("reliability: non-positive mission duration")
	}
	return -math.Log(targetReliability) * 1e9 / hours
}

// MarginFIT propagates the campaign's statistical error margins into a
// FIT uncertainty: the half-width of the SDC FIT interval implied by
// each stratum's margin at the configuration's confidence.
func MarginFIT(res *core.Result, cfg SERConfig, c stats.SampleSizeConfig) float64 {
	plan := res.Plan
	var fit float64
	for i, sub := range plan.Subpops {
		if sub.Bit < 0 {
			continue
		}
		est := res.Estimates[i]
		nCells := float64(plan.Space.LayerParams[sub.Layer])
		fit += cfg.RawFITPerBit * nCells * est.Margin(c)
	}
	return fit
}
