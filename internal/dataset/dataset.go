// Package dataset generates the synthetic CIFAR-10-like image
// classification workload used in place of CIFAR-10 (which cannot be
// shipped with the repository). Each of the 10 classes is a procedural
// pattern — a class-specific mixture of oriented sinusoidal gratings,
// radial gradients, and color tints — perturbed per sample with random
// phase, amplitude, and pixel noise. The classes are linearly
// well-separated enough for a small CNN to reach high accuracy within a
// few epochs of CPU training, while still requiring a real forward pass
// to classify: exactly the property the fault-injection methodology
// needs (a fixed test set on which the golden network behaves
// deterministically and faults can change top-1 outcomes).
package dataset

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"math/rand"

	"cnnsfi/internal/tensor"
)

// Sample is one labeled image in CHW layout.
type Sample struct {
	// Image is a Channels×Size×Size tensor with values roughly in
	// [-1, 1] (normalized like standard CIFAR preprocessing).
	Image *tensor.Tensor
	// Label is the ground-truth class in [0, Classes).
	Label int
}

// Dataset is an ordered collection of samples.
type Dataset struct {
	Samples []Sample
	Classes int
}

// Config parameterizes the synthetic generator.
type Config struct {
	// Classes is the number of classes (default 10).
	Classes int
	// Size is the square image side (default 32).
	Size int
	// Channels is the number of image channels (default 3).
	Channels int
	// N is the number of samples to generate.
	N int
	// Seed makes generation deterministic.
	Seed int64
	// Noise is the per-pixel Gaussian noise standard deviation
	// (default 0.15).
	Noise float64
}

func (c Config) withDefaults() Config {
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.Size == 0 {
		c.Size = 32
	}
	if c.Channels == 0 {
		c.Channels = 3
	}
	if c.Noise == 0 {
		c.Noise = 0.15
	}
	return c
}

// Synthetic generates a dataset with a balanced round-robin class
// assignment. Generation is deterministic in Config.Seed.
func Synthetic(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	if cfg.N <= 0 {
		panic(fmt.Sprintf("dataset: N must be positive, got %d", cfg.N))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{Classes: cfg.Classes, Samples: make([]Sample, cfg.N)}
	for i := 0; i < cfg.N; i++ {
		label := i % cfg.Classes
		d.Samples[i] = Sample{Image: renderClass(rng, cfg, label), Label: label}
	}
	return d
}

// renderClass draws one image of the given class. Class identity is
// carried by grating frequency, orientation, radial weight, and channel
// tint; sample identity by random phase and noise.
func renderClass(rng *rand.Rand, cfg Config, label int) *tensor.Tensor {
	img := tensor.New(cfg.Channels, cfg.Size, cfg.Size)

	// Class-determined parameters.
	freq := 1.0 + float64(label%5)                           // cycles across the image
	theta := float64(label) * math.Pi / float64(cfg.Classes) // orientation
	radial := float64(label%3) - 1                           // -1, 0, +1 radial mix
	cosT, sinT := math.Cos(theta), math.Sin(theta)

	// Sample-random parameters.
	phase := rng.Float64() * 2 * math.Pi
	amp := 0.7 + rng.Float64()*0.3

	cx := float64(cfg.Size-1) / 2
	for c := 0; c < cfg.Channels; c++ {
		// Class tint: each channel gets a distinct weight derived from
		// the label so color alone is informative too.
		tint := 0.5 + 0.5*math.Cos(2*math.Pi*float64(label*(c+1))/float64(cfg.Classes))
		for y := 0; y < cfg.Size; y++ {
			for x := 0; x < cfg.Size; x++ {
				u := (float64(x) - cx) / cx
				v := (float64(y) - cx) / cx
				proj := u*cosT + v*sinT
				g := math.Sin(freq*math.Pi*proj + phase)
				r := math.Sqrt(u*u+v*v) * radial
				val := amp*(0.6*g+0.4*r)*tint + rng.NormFloat64()*cfg.Noise
				img.Set3(c, y, x, float32(clamp(val, -1, 1)))
			}
		}
	}
	return img
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Split partitions the dataset into the first nTrain samples and the
// rest. It panics if nTrain is out of range.
func (d *Dataset) Split(nTrain int) (train, test *Dataset) {
	if nTrain < 0 || nTrain > len(d.Samples) {
		panic(fmt.Sprintf("dataset: cannot split %d of %d", nTrain, len(d.Samples)))
	}
	return &Dataset{Samples: d.Samples[:nTrain], Classes: d.Classes},
		&Dataset{Samples: d.Samples[nTrain:], Classes: d.Classes}
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Shuffle permutes the samples in place, deterministically in seed.
func (d *Dataset) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
}

// ClassCounts returns how many samples carry each label.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, s := range d.Samples {
		counts[s.Label]++
	}
	return counts
}

// ToImage converts a sample's CHW tensor (values in [-1, 1]) into an
// 8-bit RGBA image for visual inspection. Single-channel samples render
// as grayscale; extra channels beyond the third are ignored.
func (s Sample) ToImage() *image.RGBA {
	h, w := s.Image.Dim(1), s.Image.Dim(2)
	c := s.Image.Dim(0)
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	to8 := func(v float32) uint8 {
		x := (float64(v) + 1) / 2 * 255
		if x < 0 {
			x = 0
		}
		if x > 255 {
			x = 255
		}
		return uint8(x)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := to8(s.Image.At3(0, y, x))
			g, b := r, r
			if c >= 3 {
				g = to8(s.Image.At3(1, y, x))
				b = to8(s.Image.At3(2, y, x))
			}
			img.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return img
}

// WritePNG encodes the sample as a PNG.
func (s Sample) WritePNG(w io.Writer) error {
	return png.Encode(w, s.ToImage())
}
