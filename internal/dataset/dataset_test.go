package dataset

import (
	"bytes"
	"image/png"
	"testing"
)

func TestSyntheticDefaults(t *testing.T) {
	d := Synthetic(Config{N: 20, Seed: 1})
	if d.Len() != 20 {
		t.Fatalf("len = %d", d.Len())
	}
	if d.Classes != 10 {
		t.Errorf("classes = %d", d.Classes)
	}
	s := d.Samples[0]
	if s.Image.Rank() != 3 || s.Image.Dim(0) != 3 || s.Image.Dim(1) != 32 || s.Image.Dim(2) != 32 {
		t.Errorf("image shape = %v", s.Image.Shape)
	}
}

func TestSyntheticValuesInRange(t *testing.T) {
	d := Synthetic(Config{N: 10, Seed: 2})
	for _, s := range d.Samples {
		for _, v := range s.Image.Data {
			if v < -1 || v > 1 || v != v {
				t.Fatalf("pixel %v out of [-1,1]", v)
			}
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(Config{N: 5, Seed: 42})
	b := Synthetic(Config{N: 5, Seed: 42})
	for i := range a.Samples {
		for j := range a.Samples[i].Image.Data {
			if a.Samples[i].Image.Data[j] != b.Samples[i].Image.Data[j] {
				t.Fatal("same seed gave different images")
			}
		}
	}
	c := Synthetic(Config{N: 5, Seed: 43})
	if c.Samples[0].Image.Data[100] == a.Samples[0].Image.Data[100] {
		t.Error("different seeds suspiciously identical")
	}
}

func TestSyntheticBalancedLabels(t *testing.T) {
	d := Synthetic(Config{N: 100, Seed: 3})
	for label, count := range d.ClassCounts() {
		if count != 10 {
			t.Errorf("class %d has %d samples, want 10", label, count)
		}
	}
}

func TestSyntheticClassesAreDistinct(t *testing.T) {
	// Mean images of two different classes should differ much more than
	// two samples of the same class (pattern identity dominates noise).
	d := Synthetic(Config{N: 40, Seed: 4, Noise: 0.05})
	var same, diff float64
	var nSame, nDiff int
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			a, b := d.Samples[i], d.Samples[j]
			dist := l2(a.Image.Data, b.Image.Data)
			if a.Label == b.Label {
				same += dist
				nSame++
			} else {
				diff += dist
				nDiff++
			}
		}
	}
	if nSame == 0 || nDiff == 0 {
		t.Fatal("bad test setup")
	}
	if same/float64(nSame) >= diff/float64(nDiff) {
		t.Errorf("intra-class distance %v not below inter-class %v", same/float64(nSame), diff/float64(nDiff))
	}
}

func l2(a, b []float32) float64 {
	var sum float64
	for i := range a {
		d := float64(a[i] - b[i])
		sum += d * d
	}
	return sum
}

func TestSplit(t *testing.T) {
	d := Synthetic(Config{N: 30, Seed: 5})
	train, test := d.Split(20)
	if train.Len() != 20 || test.Len() != 10 {
		t.Errorf("split sizes = %d/%d", train.Len(), test.Len())
	}
	if train.Classes != 10 || test.Classes != 10 {
		t.Error("split lost class count")
	}
}

func TestSplitPanicsOutOfRange(t *testing.T) {
	d := Synthetic(Config{N: 5, Seed: 6})
	defer func() {
		if recover() == nil {
			t.Error("bad split did not panic")
		}
	}()
	d.Split(6)
}

func TestSyntheticPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("N=0 did not panic")
		}
	}()
	Synthetic(Config{})
}

func TestShuffleDeterministic(t *testing.T) {
	a := Synthetic(Config{N: 30, Seed: 7})
	b := Synthetic(Config{N: 30, Seed: 7})
	a.Shuffle(99)
	b.Shuffle(99)
	for i := range a.Samples {
		if a.Samples[i].Label != b.Samples[i].Label {
			t.Fatal("same shuffle seed gave different orders")
		}
	}
}

func TestCustomSize(t *testing.T) {
	d := Synthetic(Config{N: 4, Seed: 8, Size: 16, Channels: 1, Classes: 4})
	s := d.Samples[0]
	if s.Image.Dim(0) != 1 || s.Image.Dim(1) != 16 {
		t.Errorf("custom shape = %v", s.Image.Shape)
	}
	if d.Classes != 4 {
		t.Errorf("classes = %d", d.Classes)
	}
}

func TestToImageAndPNG(t *testing.T) {
	d := Synthetic(Config{N: 2, Seed: 11})
	img := d.Samples[0].ToImage()
	if img.Bounds().Dx() != 32 || img.Bounds().Dy() != 32 {
		t.Fatalf("image bounds = %v", img.Bounds())
	}
	var buf bytes.Buffer
	if err := d.Samples[0].WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 32 {
		t.Error("decoded size wrong")
	}
	// Grayscale path for single-channel data.
	g := Synthetic(Config{N: 1, Seed: 12, Channels: 1, Size: 8})
	gi := g.Samples[0].ToImage()
	c := gi.RGBAAt(3, 3)
	if c.R != c.G || c.G != c.B {
		t.Error("single-channel image should be gray")
	}
}
