// Package dataaware implements the data-aware side of the paper's
// methodology (Section III-B): deriving the per-bit success probability
// p(i) from the golden (fault-free) weight distribution of a CNN.
//
// For every bit position i of the representation:
//
//   - f0(i), f1(i): how often the bit is naturally 0 or 1 across all
//     weights (Fig. 3),
//   - D01(i): the average |golden − faulty| distance caused by a 0→1
//     flip at bit i over the weights where the bit is 0, and D10(i) the
//     symmetric 1→0 case (Fig. 2 shows one such distance),
//   - Davg(i) = D01(i)·f0(i) + D10(i)·f1(i)   (Eq. 4),
//   - p(i) = min-max normalization of Davg into [0, 0.5], computed over
//     the non-outlier values, with outliers clamped to the boundary
//     criticality (Eq. 5; Fig. 4).
//
// The larger the perturbation a bit-flip introduces, the likelier the
// fault causes a misprediction, so high-distance bits get p close to the
// maximally-pessimistic 0.5 (no sample-size saving) and low-distance
// bits get p near 0 (large saving) — that is the entire mechanism by
// which the data-aware SFI cuts the number of injections by ~20× at
// equal granularity.
package dataaware

import (
	"fmt"
	"math"

	"cnnsfi/internal/fp"
	"cnnsfi/internal/stats"
)

// Analysis is the result of scanning one weight distribution.
type Analysis struct {
	// Format is the representation the weights were analyzed in.
	Format fp.Format
	// Count is the number of weights scanned.
	Count int
	// F0 and F1 are the per-bit relative frequencies of observing a
	// logic 0 or 1 (F0[i] + F1[i] == 1).
	F0, F1 []float64
	// D01 and D10 are the per-bit average 0→1 and 1→0 flip distances.
	D01, D10 []float64
	// Davg is Eq. 4: the frequency-weighted average flip distance.
	Davg []float64
	// P is Eq. 5: Davg min-max normalized into [0, 0.5] excluding
	// outliers (which are clamped to the boundary criticality).
	P []float64
}

// DefaultGamma is the sharpness exponent of the distance→criticality
// map used by Analyze. The paper's Eq. 5 is written as a plain linear
// min-max rescaling, but its reported per-layer data-aware sample sizes
// (Table I) imply a far sharper compression: back-solving Eq. 3 from the
// table shows every bit except the exponent MSB must receive
// p(i) ≲ 0.03. A quadratic map (γ = 2) applied to the normalized
// distance reproduces the paper's aggregate compression (≈ 4% of the
// data-unaware campaign; the paper reports 207,837 / 4,885,760 ≈ 4.25%
// for ResNet-20) while preserving the ordering of Fig. 4. γ = 1 recovers
// the literal linear Eq. 5; the rounded-vs-exact and γ ablations are
// benchmarked in bench_test.go.
const DefaultGamma = 2.0

// Analyze scans the weights in the given representation with the
// default sharpness DefaultGamma. FP16 and BF16 weights are obtained by
// software conversion of the float32 values (the paper's future-work
// data-type extension). It panics on an empty weight slice.
func Analyze(weights []float32, format fp.Format) *Analysis {
	return AnalyzeGamma(weights, format, DefaultGamma)
}

// AnalyzeGamma is Analyze with an explicit sharpness exponent γ > 0 for
// the normalized distance→criticality map p = 0.5·t^γ.
func AnalyzeGamma(weights []float32, format fp.Format, gamma float64) *Analysis {
	if len(weights) == 0 {
		panic("dataaware: no weights to analyze")
	}
	if gamma <= 0 {
		panic("dataaware: gamma must be positive")
	}
	bits := format.Bits
	a := &Analysis{
		Format: format,
		Count:  len(weights),
		F0:     make([]float64, bits),
		F1:     make([]float64, bits),
		D01:    make([]float64, bits),
		D10:    make([]float64, bits),
		Davg:   make([]float64, bits),
	}

	ones := make([]int64, bits)
	sum01 := make([]float64, bits)
	sum10 := make([]float64, bits)
	for _, w := range weights {
		enc := format.Encode(w)
		for i := 0; i < bits; i++ {
			d := format.FlipDistance(enc, i)
			if enc&(1<<uint(i)) != 0 {
				ones[i]++
				sum10[i] += d
			} else {
				sum01[i] += d
			}
		}
	}

	n := float64(len(weights))
	for i := 0; i < bits; i++ {
		zeros := int64(len(weights)) - ones[i]
		a.F1[i] = float64(ones[i]) / n
		a.F0[i] = float64(zeros) / n
		if zeros > 0 {
			a.D01[i] = sum01[i] / float64(zeros)
		}
		if ones[i] > 0 {
			a.D10[i] = sum10[i] / float64(ones[i])
		}
		a.Davg[i] = a.D01[i]*a.F0[i] + a.D10[i]*a.F1[i] // Eq. 4
	}

	a.P = normalizeCriticality(a.Davg, 0, 0.5, gamma) // Eq. 5
	return a
}

// normalizeCriticality implements Eq. 5's min-max normalization of Davg
// into [a, b] "without considering the outliers". Because average
// bit-flip distances span dozens of orders of magnitude (an exponent-MSB
// flip moves a weight by ~2^127 while a mantissa-LSB flip moves it by
// ~2^-23·|w|), the Tukey fences are computed on log10(Davg): only the
// astronomically large distances are excluded, and they are clamped to
// the maximum criticality b exactly as the paper prescribes ("we could
// directly assign the outliers the highest criticality, p = 0.5"). The
// surviving values are min-max rescaled linearly.
func normalizeCriticality(davg []float64, a, b, gamma float64) []float64 {
	const logFloor = -300 // stand-in for log10(0)
	logs := make([]float64, len(davg))
	for i, v := range davg {
		if v > 0 {
			logs[i] = math.Log10(v)
		} else {
			logs[i] = logFloor
		}
	}
	loFence, hiFence := stats.OutlierBounds(logs)

	lo, hi := math.Inf(1), math.Inf(-1)
	for i, lg := range logs {
		if lg < loFence || lg > hiFence {
			continue
		}
		if davg[i] < lo {
			lo = davg[i]
		}
		if davg[i] > hi {
			hi = davg[i]
		}
	}
	out := make([]float64, len(davg))
	if lo > hi { // everything is an outlier: degenerate, use plain min-max
		return stats.MinMaxNormalize(davg, a, b)
	}
	for i, v := range davg {
		switch {
		case logs[i] > hiFence:
			out[i] = b
		case logs[i] < loFence:
			out[i] = a
		case hi == lo:
			out[i] = (a + b) / 2
		default:
			t := (v - lo) / (hi - lo)
			out[i] = a + math.Pow(t, gamma)*(b-a)
		}
	}
	return out
}

// AnalyzeFP32 is shorthand for Analyze(weights, fp.FP32), the paper's
// configuration.
func AnalyzeFP32(weights []float32) *Analysis { return Analyze(weights, fp.FP32) }

// PFor returns p(i) for a bit position, guarding the index.
func (a *Analysis) PFor(bit int) float64 {
	if bit < 0 || bit >= len(a.P) {
		panic(fmt.Sprintf("dataaware: bit %d out of range", bit))
	}
	return a.P[bit]
}

// MostCriticalBit returns the bit position with the highest p (ties
// resolved to the highest bit index, which in practice is an exponent
// bit).
func (a *Analysis) MostCriticalBit() int {
	best := 0
	for i, p := range a.P {
		if p > a.P[best] || (p == a.P[best] && a.Davg[i] > a.Davg[best]) {
			best = i
		}
	}
	return best
}

// CountF0 returns the absolute number of weights whose bit i is 0
// (the counts plotted in Fig. 3).
func (a *Analysis) CountF0(bit int) int64 {
	return int64(a.F0[bit]*float64(a.Count) + 0.5)
}

// CountF1 returns the absolute number of weights whose bit i is 1.
func (a *Analysis) CountF1(bit int) int64 {
	return int64(a.F1[bit]*float64(a.Count) + 0.5)
}

// PerLayer holds one Analysis per weight layer. Layers of a CNN have
// very different weight scales (a first conv layer's std can be 5× a
// deep layer's), so the network-wide p(i) of the paper averages over
// heterogeneous distributions; deriving p(i, l) per layer matches each
// subpopulation's criticality more closely — a refinement of the
// paper's method enabled by the same machinery.
type PerLayer struct {
	// Layers holds the per-layer analyses in layer order.
	Layers []*Analysis
}

// AnalyzePerLayer runs the data-aware analysis independently on each
// layer's weights (paper convention: format FP32, sharpness
// DefaultGamma). It panics if any layer is empty.
func AnalyzePerLayer(layerWeights [][]float32, format fp.Format) *PerLayer {
	out := &PerLayer{Layers: make([]*Analysis, len(layerWeights))}
	for l, w := range layerWeights {
		out.Layers[l] = Analyze(w, format)
	}
	return out
}

// P returns the per-layer per-bit probability matrix, indexed
// [layer][bit].
func (pl *PerLayer) P() [][]float64 {
	out := make([][]float64, len(pl.Layers))
	for l, a := range pl.Layers {
		out[l] = a.P
	}
	return out
}
