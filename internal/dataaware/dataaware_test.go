package dataaware

import (
	"math"
	"math/rand"
	"testing"

	"cnnsfi/internal/fp"
)

// gaussianWeights mimics a trained conv layer's weight distribution.
func gaussianWeights(n int, std float64, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float32, n)
	for i := range w {
		w[i] = float32(rng.NormFloat64() * std)
	}
	return w
}

func TestAnalyzeBasicInvariants(t *testing.T) {
	a := AnalyzeFP32(gaussianWeights(5000, 0.05, 1))
	if a.Count != 5000 {
		t.Fatalf("count = %d", a.Count)
	}
	for i := 0; i < 32; i++ {
		if math.Abs(a.F0[i]+a.F1[i]-1) > 1e-12 {
			t.Errorf("bit %d: f0+f1 = %v", i, a.F0[i]+a.F1[i])
		}
		if a.P[i] < 0 || a.P[i] > 0.5 {
			t.Errorf("bit %d: p = %v outside [0, 0.5]", i, a.P[i])
		}
		if a.D01[i] < 0 || a.D10[i] < 0 {
			t.Errorf("bit %d: negative distance", i)
		}
		if a.Davg[i] < 0 {
			t.Errorf("bit %d: negative Davg", i)
		}
	}
}

// TestSignBitFrequencies: a symmetric zero-mean distribution has the sign
// bit set about half the time — the pattern visible in the paper's
// Fig. 3 at bit 31.
func TestSignBitFrequencies(t *testing.T) {
	a := AnalyzeFP32(gaussianWeights(20000, 0.05, 2))
	if math.Abs(a.F1[31]-0.5) > 0.02 {
		t.Errorf("sign-bit f1 = %v, want ≈ 0.5", a.F1[31])
	}
}

// TestExponentBitFrequencies: weights with |w| « 1 have biased exponents
// well below 127, so the exponent MSB (bit 30) is essentially always 0
// — again matching Fig. 3.
func TestExponentBitFrequencies(t *testing.T) {
	a := AnalyzeFP32(gaussianWeights(20000, 0.05, 3))
	if a.F1[30] > 0.001 {
		t.Errorf("exponent-MSB f1 = %v, want ≈ 0", a.F1[30])
	}
	// Bits 23-26 of the exponent are frequently 1 for magnitudes around
	// 2^-7..2^-3 (biased exponent ≈ 120-124 = 0111_1xxx).
	if a.F1[26] < 0.5 {
		t.Errorf("exponent bit 26 f1 = %v, want mostly 1", a.F1[26])
	}
}

// TestPShapeMatchesFig4: the paper's Fig. 4 shows p ≈ 0.5 at the
// exponent MSB, a falling staircase over the rest of the exponent, and
// ≈ 0 over the whole mantissa. The most critical bit must be bit 30.
func TestPShapeMatchesFig4(t *testing.T) {
	a := AnalyzeFP32(gaussianWeights(50000, 0.08, 4))
	if got := a.MostCriticalBit(); got != 30 {
		t.Fatalf("most critical bit = %d, want 30", got)
	}
	if a.P[30] != 0.5 {
		t.Errorf("p(30) = %v, want 0.5 (outlier clamped to max)", a.P[30])
	}
	// Mantissa bits are all near zero criticality.
	for i := 0; i <= 15; i++ {
		if a.P[i] > 0.05 {
			t.Errorf("mantissa bit %d has p = %v, want ≈ 0", i, a.P[i])
		}
	}
	// Exponent bits are on average far more critical than mantissa bits.
	var expMean, mantMean float64
	for i := 23; i <= 30; i++ {
		expMean += a.P[i]
	}
	expMean /= 8
	for i := 0; i < 23; i++ {
		mantMean += a.P[i]
	}
	mantMean /= 23
	if expMean <= 2*mantMean {
		t.Errorf("mean exponent p %v does not dominate mean mantissa p %v", expMean, mantMean)
	}
	// The exponent MSB dominates the sign bit in raw criticality:
	// flipping the sign of a small weight moves it by 2|w|, flipping
	// bit 30 moves it by ~2^127.
	if a.Davg[31] >= a.Davg[30] {
		t.Errorf("sign Davg=%v should be below exponent MSB Davg=%v", a.Davg[31], a.Davg[30])
	}
}

// TestDataAwareSavings reproduces the headline property of Table I: with
// the derived p(i), the data-aware total sample size is far below the
// data-unaware (p = 0.5) total at the same granularity.
func TestDataAwareSavings(t *testing.T) {
	a := AnalyzeFP32(gaussianWeights(50000, 0.08, 5))
	var sumPVar float64
	for _, p := range a.P {
		sumPVar += p * (1 - p)
	}
	// Data-unaware: 32 bits × 0.25. If the data-aware variance sum is
	// below 20% of it, the sample-size saving is of the same order as
	// the paper's (207,837 / 4,885,760 ≈ 4%).
	if ratio := sumPVar / (32 * 0.25); ratio > 0.3 {
		t.Errorf("Σp(1-p) ratio = %v, want « 1 (large FI saving)", ratio)
	}
}

func TestD01D10Asymmetry(t *testing.T) {
	// For bit 30 with all-zero bit values, D10 must be 0 (no weight has
	// the bit set) and D01 must be huge.
	a := AnalyzeFP32(gaussianWeights(10000, 0.05, 6))
	if a.D10[30] != 0 {
		t.Errorf("D10(30) = %v, want 0 (bit never 1)", a.D10[30])
	}
	if a.D01[30] < 1e30 {
		t.Errorf("D01(30) = %v, want astronomically large", a.D01[30])
	}
}

func TestAnalyzeConstantWeights(t *testing.T) {
	// Degenerate distribution: all weights identical. Analysis must not
	// produce NaN and p must stay in range.
	w := make([]float32, 100)
	for i := range w {
		w[i] = 0.125
	}
	a := AnalyzeFP32(w)
	for i, p := range a.P {
		if math.IsNaN(p) || p < 0 || p > 0.5 {
			t.Errorf("bit %d: p = %v", i, p)
		}
	}
}

func TestAnalyzeFP16(t *testing.T) {
	a := Analyze(gaussianWeights(10000, 0.05, 7), fp.FP16)
	if len(a.P) != 16 {
		t.Fatalf("fp16 analysis has %d bits", len(a.P))
	}
	// FP16 exponent MSB (bit 14) must dominate like FP32's bit 30.
	if got := a.MostCriticalBit(); got != 14 {
		t.Errorf("fp16 most critical bit = %d, want 14", got)
	}
}

func TestAnalyzeBF16(t *testing.T) {
	a := Analyze(gaussianWeights(10000, 0.05, 8), fp.BF16)
	if len(a.P) != 16 {
		t.Fatalf("bf16 analysis has %d bits", len(a.P))
	}
	if got := a.MostCriticalBit(); got != 14 { // bf16 exponent MSB
		t.Errorf("bf16 most critical bit = %d, want 14", got)
	}
}

func TestCountsMatchFrequencies(t *testing.T) {
	w := gaussianWeights(1000, 0.05, 9)
	a := AnalyzeFP32(w)
	for i := 0; i < 32; i++ {
		if a.CountF0(i)+a.CountF1(i) != 1000 {
			t.Errorf("bit %d: counts sum to %d", i, a.CountF0(i)+a.CountF1(i))
		}
	}
}

func TestPForPanics(t *testing.T) {
	a := AnalyzeFP32(gaussianWeights(10, 0.05, 10))
	if a.PFor(0) != a.P[0] {
		t.Error("PFor(0) mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range PFor did not panic")
		}
	}()
	a.PFor(32)
}

func TestAnalyzeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty Analyze did not panic")
		}
	}()
	AnalyzeFP32(nil)
}

func BenchmarkAnalyzeFP32(b *testing.B) {
	w := gaussianWeights(268336, 0.05, 11) // ResNet-20 size
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeFP32(w)
	}
}

func TestAnalyzeGammaPanicsOnBadGamma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("gamma <= 0 did not panic")
		}
	}()
	AnalyzeGamma([]float32{1, 2}, fp.FP32, 0)
}

func TestAnalyzeGammaOneIsLinearEqFive(t *testing.T) {
	w := gaussianWeights(20000, 0.05, 12)
	linear := AnalyzeGamma(w, fp.FP32, 1)
	sharp := AnalyzeGamma(w, fp.FP32, 2)
	// Same Davg either way; only the p map changes.
	for i := range linear.Davg {
		if linear.Davg[i] != sharp.Davg[i] {
			t.Fatal("gamma changed Davg")
		}
	}
	// γ=2 compresses every interior p below the linear value.
	for i := range linear.P {
		if sharp.P[i] > linear.P[i]+1e-12 {
			t.Errorf("bit %d: sharp p %v above linear %v", i, sharp.P[i], linear.P[i])
		}
	}
}

func TestPerLayerAnalysis(t *testing.T) {
	layers := [][]float32{
		gaussianWeights(2000, 0.25, 13), // wide first layer
		gaussianWeights(2000, 0.05, 14), // narrow deep layer
	}
	pl := AnalyzePerLayer(layers, fp.FP32)
	if len(pl.Layers) != 2 {
		t.Fatalf("layers = %d", len(pl.Layers))
	}
	rows := pl.P()
	for l, row := range rows {
		if len(row) != 32 {
			t.Fatalf("layer %d has %d bits", l, len(row))
		}
		for i, p := range row {
			if p < 0 || p > 0.5 {
				t.Errorf("layer %d bit %d: p = %v", l, i, p)
			}
		}
	}
	// Both layers put maximum criticality on the exponent MSB.
	for l, a := range pl.Layers {
		if got := a.MostCriticalBit(); got != 30 {
			t.Errorf("layer %d most critical bit = %d", l, got)
		}
	}
}
