package nn

import (
	"fmt"
	"math"

	"cnnsfi/internal/tensor"
)

// Conv2D is a 2-D convolution with optional grouping (Groups == InC ==
// OutC gives a depthwise convolution, as used by MobileNetV2). Weights
// are stored in OIHW order: [OutC, InC/Groups, KH, KW]. The CIFAR
// topologies of the paper use bias-free convolutions (batch normalization
// follows every convolution), so Bias may be nil.
type Conv2D struct {
	Label  string
	InC    int
	OutC   int
	KH, KW int
	Stride int
	Pad    int
	Groups int
	// W is the flat OIHW weight storage; this is the fault target.
	W []float32
	// Bias is the optional per-output-channel bias.
	Bias []float32
	// Algo selects the convolution implementation (default ConvAuto).
	Algo ConvAlgo
}

// NewConv2D allocates a zero-weight convolution. groups must divide both
// inC and outC.
func NewConv2D(label string, inC, outC, k, stride, pad, groups int) *Conv2D {
	if groups <= 0 || inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("nn: conv %q: groups %d incompatible with %d→%d", label, groups, inC, outC))
	}
	return &Conv2D{
		Label: label, InC: inC, OutC: outC, KH: k, KW: k,
		Stride: stride, Pad: pad, Groups: groups,
		W: make([]float32, outC*(inC/groups)*k*k),
	}
}

// Name returns the layer label.
func (c *Conv2D) Name() string { return c.Label }

// WeightData returns the flat OIHW weight slice (the fault target).
func (c *Conv2D) WeightData() []float32 { return c.W }

// NumWeights returns the weight count, e.g. 432 for the paper's
// ResNet-20 layer 0 (3×3×3→16).
func (c *Conv2D) NumWeights() int { return len(c.W) }

// CloneWeights returns a copy of the convolution with detached weight
// storage. The bias slice is shared: it is not part of the fault
// population and is never mutated by injection.
func (c *Conv2D) CloneWeights() WeightLayer {
	cl := *c
	cl.W = append([]float32(nil), c.W...)
	return &cl
}

// OutSize returns the spatial output size for an input of size in.
func (c *Conv2D) OutSize(in int) int { return (in+2*c.Pad-c.KH)/c.Stride + 1 }

// Forward computes the convolution of a CHW input.
func (c *Conv2D) Forward(inputs ...*tensor.Tensor) *tensor.Tensor {
	return c.forward(nil, inputs...)
}

// ForwardArena implements ArenaLayer: both the output tensor and the
// im2col patch matrix come from the arena.
func (c *Conv2D) ForwardArena(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	return c.forward(a, inputs...)
}

func (c *Conv2D) forward(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	if x.Shape[0] != c.InC {
		panic(fmt.Sprintf("nn: conv %q expects %d input channels, got %d", c.Label, c.InC, x.Shape[0]))
	}
	h, w := x.Shape[1], x.Shape[2]
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	if c.useIm2col(oh, ow) {
		return c.forwardIm2col(a, x)
	}
	out := outTensor(a, c.OutC, oh, ow)

	icg := c.InC / c.Groups  // input channels per group
	ocg := c.OutC / c.Groups // output channels per group
	ksize := icg * c.KH * c.KW

	for oc := 0; oc < c.OutC; oc++ {
		g := oc / ocg
		wBase := oc * ksize
		outPlane := out.Data[oc*oh*ow : (oc+1)*oh*ow]
		var bias float32
		if c.Bias != nil {
			bias = c.Bias[oc]
		}
		for icLocal := 0; icLocal < icg; icLocal++ {
			ic := g*icg + icLocal
			inPlane := x.Data[ic*h*w : (ic+1)*h*w]
			wOff := wBase + icLocal*c.KH*c.KW
			for ky := 0; ky < c.KH; ky++ {
				for kx := 0; kx < c.KW; kx++ {
					wv := c.W[wOff+ky*c.KW+kx]
					if wv == 0 {
						continue
					}
					// Valid output rows for this kernel tap.
					for oy := 0; oy < oh; oy++ {
						iy := oy*c.Stride + ky - c.Pad
						if iy < 0 || iy >= h {
							continue
						}
						rowIn := inPlane[iy*w : iy*w+w]
						rowOut := outPlane[oy*ow : oy*ow+ow]
						for ox := 0; ox < ow; ox++ {
							ix := ox*c.Stride + kx - c.Pad
							if ix < 0 || ix >= w {
								continue
							}
							rowOut[ox] += wv * rowIn[ix]
						}
					}
				}
			}
		}
		if bias != 0 {
			for i := range outPlane {
				outPlane[i] += bias
			}
		}
	}
	return out
}

// Linear is a fully-connected layer; weights are stored row-major
// [Out, In]. The paper's ResNet-20 final layer (64→10, bias-free) has
// 640 weights.
type Linear struct {
	Label string
	In    int
	Out   int
	// W is the flat row-major weight storage (the fault target).
	W []float32
	// Bias is the optional per-output bias.
	Bias []float32
}

// NewLinear allocates a zero-weight fully-connected layer.
func NewLinear(label string, in, out int) *Linear {
	return &Linear{Label: label, In: in, Out: out, W: make([]float32, in*out)}
}

// Name returns the layer label.
func (l *Linear) Name() string { return l.Label }

// WeightData returns the flat weight slice (the fault target).
func (l *Linear) WeightData() []float32 { return l.W }

// NumWeights returns In·Out.
func (l *Linear) NumWeights() int { return len(l.W) }

// CloneWeights returns a copy of the layer with detached weight storage;
// the bias slice is shared (injection never mutates it).
func (l *Linear) CloneWeights() WeightLayer {
	cl := *l
	cl.W = append([]float32(nil), l.W...)
	return &cl
}

// Forward computes W·x (+ bias) for a rank-1 input of length In.
func (l *Linear) Forward(inputs ...*tensor.Tensor) *tensor.Tensor {
	return l.forward(nil, inputs...)
}

// ForwardArena implements ArenaLayer.
func (l *Linear) ForwardArena(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	return l.forward(a, inputs...)
}

func (l *Linear) forward(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	if x.Len() != l.In {
		panic(fmt.Sprintf("nn: linear %q expects %d inputs, got %d", l.Label, l.In, x.Len()))
	}
	out := outTensor(a, l.Out)
	for o := 0; o < l.Out; o++ {
		row := l.W[o*l.In : (o+1)*l.In]
		var sum float32
		for i, v := range x.Data {
			sum += row[i] * v
		}
		if l.Bias != nil {
			sum += l.Bias[o]
		}
		out.Data[o] = sum
	}
	return out
}

// BatchNorm2D applies per-channel inference-mode batch normalization:
// y = γ·(x − mean)/sqrt(var + ε) + β. Its parameters are not part of the
// paper's fault population (only conv/linear weights are targeted), so it
// intentionally does not implement WeightLayer.
type BatchNorm2D struct {
	Label string
	C     int
	Gamma []float32
	Beta  []float32
	Mean  []float32
	Var   []float32
	Eps   float32

	// scale/shift are the folded per-channel affine coefficients,
	// computed lazily from the statistics above.
	scale, shift []float32
}

// NewBatchNorm2D allocates an identity batch normalization (γ=1, β=0,
// mean=0, var=1).
func NewBatchNorm2D(label string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		Label: label, C: c, Eps: 1e-5,
		Gamma: make([]float32, c), Beta: make([]float32, c),
		Mean: make([]float32, c), Var: make([]float32, c),
	}
	for i := 0; i < c; i++ {
		bn.Gamma[i] = 1
		bn.Var[i] = 1
	}
	return bn
}

// Name returns the layer label.
func (b *BatchNorm2D) Name() string { return b.Label }

// Refold recomputes the folded scale/shift coefficients; call after
// mutating Gamma/Beta/Mean/Var.
func (b *BatchNorm2D) Refold() {
	b.scale = make([]float32, b.C)
	b.shift = make([]float32, b.C)
	for i := 0; i < b.C; i++ {
		inv := 1 / sqrt32(b.Var[i]+b.Eps)
		b.scale[i] = b.Gamma[i] * inv
		b.shift[i] = b.Beta[i] - b.Gamma[i]*b.Mean[i]*inv
	}
}

// Forward applies the folded affine transform per channel.
func (b *BatchNorm2D) Forward(inputs ...*tensor.Tensor) *tensor.Tensor {
	return b.forward(nil, inputs...)
}

// ForwardArena implements ArenaLayer.
func (b *BatchNorm2D) ForwardArena(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	return b.forward(a, inputs...)
}

func (b *BatchNorm2D) forward(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	if b.scale == nil {
		b.Refold()
	}
	if x.Shape[0] != b.C {
		panic(fmt.Sprintf("nn: batchnorm %q expects %d channels, got %d", b.Label, b.C, x.Shape[0]))
	}
	out := outTensor(a, x.Shape...)
	plane := x.Shape[1] * x.Shape[2]
	for c := 0; c < b.C; c++ {
		s, sh := b.scale[c], b.shift[c]
		in := x.Data[c*plane : (c+1)*plane]
		o := out.Data[c*plane : (c+1)*plane]
		for i, v := range in {
			o[i] = s*v + sh
		}
	}
	return out
}

func sqrt32(v float32) float32 {
	if v <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(v)))
}
