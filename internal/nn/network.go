package nn

import (
	"fmt"
	"math"
	"strings"

	"cnnsfi/internal/tensor"
)

// InputID is the pseudo-node index denoting the network input.
const InputID = -1

// Node is one step of a network's dataflow graph. Inputs refer to the
// outputs of earlier nodes by index (or InputID for the network input),
// so the node list is a topological order by construction.
type Node struct {
	Layer  Layer
	Inputs []int
}

// Network is a feed-forward CNN expressed as a DAG of layers. The last
// node's output is the network output (class scores).
type Network struct {
	// NetName is a human-readable model identifier such as "resnet20".
	NetName string
	// Nodes are the dataflow steps in topological order.
	Nodes []Node

	weightNodes []int // node indices of WeightLayers, in graph order

	// scratch is the network's private arena for ExecFromScratch, created
	// lazily and never shared: Clone always hands out a clone with a nil
	// arena, so each worker's network grows its own. The concurrency-safe
	// Exec/ExecFrom paths never touch it.
	scratch *tensor.Arena
	// insScratch is the reusable layer-input buffer of the arena execution
	// path. Same ownership rule as scratch: single-owner only.
	insScratch []*tensor.Tensor

	// batchPar is the goroutine budget handed to BatchLayer kernels by
	// the batched executors; 0 and 1 both mean serial (see
	// SetBatchParallelism).
	batchPar int
}

// NewNetwork creates an empty network with the given name.
func NewNetwork(name string) *Network { return &Network{NetName: name} }

// Add appends a layer fed by the given producer node indices and returns
// the new node's index. Passing no inputs wires the layer to the most
// recently added node (or the network input for the first node).
func (n *Network) Add(l Layer, inputs ...int) int {
	if len(inputs) == 0 {
		inputs = []int{len(n.Nodes) - 1} // previous node; -1 = InputID for first
	}
	for _, in := range inputs {
		if in < InputID || in >= len(n.Nodes) {
			panic(fmt.Sprintf("nn: node %q references invalid input %d", l.Name(), in))
		}
	}
	id := len(n.Nodes)
	n.Nodes = append(n.Nodes, Node{Layer: l, Inputs: inputs})
	if _, ok := l.(WeightLayer); ok {
		n.weightNodes = append(n.weightNodes, id)
	}
	return id
}

// WeightLayers returns the injectable layers in graph order. Their
// position in this slice is the "layer index" of the paper's tables
// (e.g. ResNet-20 layer 0 is the first convolution, layer 19 the final
// fully-connected layer).
func (n *Network) WeightLayers() []WeightLayer {
	out := make([]WeightLayer, len(n.weightNodes))
	for i, id := range n.weightNodes {
		out[i] = n.Nodes[id].Layer.(WeightLayer)
	}
	return out
}

// WeightNodeIndex returns the graph node index of weight layer l
// (paper's layer numbering).
func (n *Network) WeightNodeIndex(l int) int { return n.weightNodes[l] }

// NumWeightLayers returns the number of injectable layers (20 for
// ResNet-20, 54 for MobileNetV2).
func (n *Network) NumWeightLayers() int { return len(n.weightNodes) }

// TotalWeights returns the total parameter count of all injectable
// layers (268,336 for our ResNet-20; the paper lists 268,346, a +10
// discrepancy documented in DESIGN.md).
func (n *Network) TotalWeights() int {
	total := 0
	for _, id := range n.weightNodes {
		total += n.Nodes[id].Layer.(WeightLayer).NumWeights()
	}
	return total
}

// Clone returns a copy of the network for concurrent fault injection:
// every weight layer's storage is deep-copied (via WeightCloner), so
// mutating a clone's weights never affects the original or other
// clones, while stateless layers (activations, pooling, shortcuts,
// batch normalization) are shared read-only. Lazily folded state
// (BatchNorm2D's scale/shift) is folded eagerly first, so the shared
// layers are never written after cloning — Forward on the original and
// any number of clones may then run concurrently. The clone starts with
// no scratch arena: each owner's ExecFromScratch grows its own, so
// arena state is never shared between clones. It panics if a weight
// layer does not implement WeightCloner.
func (n *Network) Clone() *Network {
	c := &Network{NetName: n.NetName, batchPar: n.batchPar}
	c.Nodes = append([]Node(nil), n.Nodes...)
	c.weightNodes = append([]int(nil), n.weightNodes...)
	for _, node := range n.Nodes {
		if bn, ok := node.Layer.(*BatchNorm2D); ok && bn.scale == nil {
			bn.Refold()
		}
	}
	for _, id := range n.weightNodes {
		wc, ok := n.Nodes[id].Layer.(WeightCloner)
		if !ok {
			panic(fmt.Sprintf("nn: weight layer %q does not support cloning", n.Nodes[id].Layer.Name()))
		}
		c.Nodes[id].Layer = wc.CloneWeights()
	}
	return c
}

// ScratchArena returns the network's private scratch arena, creating it
// on first use. The arena (and therefore ExecFromScratch) may only be
// used by the network's single owner; evaluators that share a network
// across goroutines must stay on Exec/ExecFrom. See tensor.Arena for the
// invalidation rules.
func (n *Network) ScratchArena() *tensor.Arena {
	if n.scratch == nil {
		n.scratch = tensor.NewArena()
	}
	return n.scratch
}

// Forward runs the whole network on one CHW input and returns the output
// scores.
func (n *Network) Forward(x *tensor.Tensor) *tensor.Tensor {
	outs := n.Exec(x)
	return outs[len(outs)-1]
}

// Exec runs the network and returns every node's output (index-aligned
// with Nodes). The returned slice is a fresh allocation and can be kept
// as a prefix cache for ExecFrom.
func (n *Network) Exec(x *tensor.Tensor) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(n.Nodes))
	n.execRange(x, outs, 0, nil)
	return outs
}

// ExecFrom re-executes the graph starting at node from, reusing the
// cached outputs of earlier nodes. cache must be a slice previously
// produced by Exec (or ExecFrom) for the same input x; nodes ≥ from are
// overwritten. It returns the network output.
//
// This is the prefix-caching optimization of the fault injector: a fault
// in weight layer l only invalidates nodes ≥ WeightNodeIndex(l), so the
// activations feeding that layer need not be recomputed for every fault.
func (n *Network) ExecFrom(x *tensor.Tensor, cache []*tensor.Tensor, from int) *tensor.Tensor {
	if len(cache) != len(n.Nodes) {
		panic(fmt.Sprintf("nn: cache length %d does not match %d nodes", len(cache), len(n.Nodes)))
	}
	if from < 0 {
		from = 0
	}
	n.execRange(x, cache, from, nil)
	return cache[len(cache)-1]
}

// ExecFromScratch is ExecFrom with every recomputed node output (and any
// layer-internal workspace) drawn from the network's scratch arena
// instead of the heap. After a warm-up pass per distinct input shape the
// call performs zero heap allocations — this is the fault injection hot
// path, where the same suffix of the graph runs once per experiment.
//
// The arena is Reset on entry, so tensors written into cache by a
// previous ExecFromScratch call are invalid the moment the next call
// starts: callers must re-copy their golden prefix into cache before
// every call (the injector does) and must not retain entries at indices
// ≥ from across calls. Single-owner only — see ScratchArena.
func (n *Network) ExecFromScratch(x *tensor.Tensor, cache []*tensor.Tensor, from int) *tensor.Tensor {
	if len(cache) != len(n.Nodes) {
		panic(fmt.Sprintf("nn: cache length %d does not match %d nodes", len(cache), len(n.Nodes)))
	}
	if from < 0 {
		from = 0
	}
	a := n.ScratchArena()
	a.Reset()
	n.execRange(x, cache, from, a)
	return cache[len(cache)-1]
}

func (n *Network) execRange(x *tensor.Tensor, outs []*tensor.Tensor, from int, a *tensor.Arena) {
	for i := from; i < len(n.Nodes); i++ {
		node := &n.Nodes[i]
		var ins []*tensor.Tensor
		if a != nil {
			// Arena path: single-owner by contract, so the input buffer
			// can be reused across nodes (and calls) without allocating.
			if cap(n.insScratch) < len(node.Inputs) {
				n.insScratch = make([]*tensor.Tensor, len(node.Inputs))
			}
			ins = n.insScratch[:len(node.Inputs)]
		} else {
			ins = make([]*tensor.Tensor, len(node.Inputs))
		}
		for j, src := range node.Inputs {
			if src == InputID {
				ins[j] = x
			} else {
				ins[j] = outs[src]
			}
		}
		if a != nil {
			if al, ok := node.Layer.(ArenaLayer); ok {
				outs[i] = al.ForwardArena(a, ins...)
				continue
			}
		}
		outs[i] = node.Layer.Forward(ins...)
	}
}

// SetBatchParallelism sets the goroutine budget the batched executors
// hand to each BatchLayer call. The default (1) runs every kernel
// serially, which keeps the arena hot path allocation-free; par > 1
// trades per-call goroutine spawns (which allocate) for wall time on
// multi-core hosts. Results are bit-identical at any setting: each
// output element is computed by exactly one goroutine in the same
// serial order. Clones inherit the setting.
func (n *Network) SetBatchParallelism(par int) {
	if par < 1 {
		par = 1
	}
	n.batchPar = par
}

// ExecBatch runs the network on a batched input (leading N dimension)
// and returns every node's batched output, heap-allocated — the batched
// counterpart of Exec, usable as a prefix cache for ExecBatchFrom.
func (n *Network) ExecBatch(x *tensor.Tensor) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(n.Nodes))
	n.execBatchRange(x, outs, 0, nil)
	return outs
}

// ExecBatchFrom is ExecFrom for a batched input: it re-executes nodes
// ≥ from against the batched prefix cache and returns the batched
// network output ([N, classes]).
func (n *Network) ExecBatchFrom(x *tensor.Tensor, cache []*tensor.Tensor, from int) *tensor.Tensor {
	if len(cache) != len(n.Nodes) {
		panic(fmt.Sprintf("nn: cache length %d does not match %d nodes", len(cache), len(n.Nodes)))
	}
	if from < 0 {
		from = 0
	}
	n.execBatchRange(x, cache, from, nil)
	return cache[len(cache)-1]
}

// ExecBatchFromScratch is ExecBatchFrom with every recomputed node
// output drawn from the network's scratch arena — the batched injection
// hot path. It shares the arena (and its single-owner contract and
// re-copy-before-every-call cache rule) with ExecFromScratch; see that
// method and docs/ARCHITECTURE.md for the ownership rules. With batch
// parallelism at its default of 1, the steady state performs zero heap
// allocations.
func (n *Network) ExecBatchFromScratch(x *tensor.Tensor, cache []*tensor.Tensor, from int) *tensor.Tensor {
	if len(cache) != len(n.Nodes) {
		panic(fmt.Sprintf("nn: cache length %d does not match %d nodes", len(cache), len(n.Nodes)))
	}
	if from < 0 {
		from = 0
	}
	a := n.ScratchArena()
	a.Reset()
	n.execBatchRange(x, cache, from, a)
	return cache[len(cache)-1]
}

// ExecBatchFromScratchChannel is ExecBatchFromScratch specialised for a
// single-weight fault: the caller asserts that, relative to the golden
// cache, the network's weights differ only inside node from's layer and
// only in the rows feeding that layer's output channel oc. When that
// node is a single-input Conv2D, its recomputation copies every other
// channel's plane from the golden cache entry and recomputes channel oc
// alone — bit-identical to a full recompute, since each output channel
// accumulates independently from its own (untouched) weight rows.
// Any other layer shape, or oc < 0, falls back to a full ExecBatchFrom
// of node from. Downstream nodes are always fully recomputed.
func (n *Network) ExecBatchFromScratchChannel(x *tensor.Tensor, cache []*tensor.Tensor, from, oc int) *tensor.Tensor {
	if len(cache) != len(n.Nodes) {
		panic(fmt.Sprintf("nn: cache length %d does not match %d nodes", len(cache), len(n.Nodes)))
	}
	if from < 0 {
		from = 0
	}
	a := n.ScratchArena()
	a.Reset()
	if oc >= 0 && from < len(n.Nodes) {
		node := &n.Nodes[from]
		if c, ok := node.Layer.(*Conv2D); ok && oc < c.OutC && len(node.Inputs) == 1 {
			par := n.batchPar
			if par < 1 {
				par = 1
			}
			in := x
			if src := node.Inputs[0]; src != InputID {
				in = cache[src]
			}
			golden := cache[from]
			cache[from] = c.forwardBatchChannel(a, par, in, golden, oc)
			n.execBatchRange(x, cache, from+1, a)
			return cache[len(cache)-1]
		}
	}
	n.execBatchRange(x, cache, from, a)
	return cache[len(cache)-1]
}

func (n *Network) execBatchRange(x *tensor.Tensor, outs []*tensor.Tensor, from int, a *tensor.Arena) {
	par := n.batchPar
	if par < 1 {
		par = 1
	}
	for i := from; i < len(n.Nodes); i++ {
		node := &n.Nodes[i]
		var ins []*tensor.Tensor
		if a != nil {
			if cap(n.insScratch) < len(node.Inputs) {
				n.insScratch = make([]*tensor.Tensor, len(node.Inputs))
			}
			ins = n.insScratch[:len(node.Inputs)]
		} else {
			ins = make([]*tensor.Tensor, len(node.Inputs))
		}
		for j, src := range node.Inputs {
			if src == InputID {
				ins[j] = x
			} else {
				ins[j] = outs[src]
			}
		}
		if bl, ok := node.Layer.(BatchLayer); ok {
			outs[i] = bl.ForwardBatch(a, par, ins...)
			continue
		}
		outs[i] = forwardPerImage(node.Layer, ins)
	}
}

// forwardPerImage is the batched executor's fallback for out-of-tree
// layers without BatchLayer support: the layer's Forward runs once per
// image on heap-allocated views and the results are stacked. It
// allocates — only in-tree BatchLayer kernels are on the
// allocation-free hot path.
func forwardPerImage(l Layer, ins []*tensor.Tensor) *tensor.Tensor {
	nb := ins[0].Shape[0]
	views := make([]*tensor.Tensor, len(ins))
	var out *tensor.Tensor
	for img := 0; img < nb; img++ {
		for j, in := range ins {
			sz := in.Len() / in.Shape[0]
			views[j] = &tensor.Tensor{Shape: in.Shape[1:], Data: in.Data[img*sz : (img+1)*sz]}
		}
		y := l.Forward(views...)
		if out == nil {
			out = tensor.New(append([]int{nb}, y.Shape...)...)
		}
		copy(out.Data[img*y.Len():(img+1)*y.Len()], y.Data)
	}
	return out
}

// Predict returns the top-1 class index for one input.
func (n *Network) Predict(x *tensor.Tensor) int {
	return n.Forward(x).ArgMax()
}

// LayerParamCounts returns the weight count of each injectable layer in
// order — the "Parameters" column of the paper's Table I.
func (n *Network) LayerParamCounts() []int {
	layers := n.WeightLayers()
	out := make([]int, len(layers))
	for i, l := range layers {
		out[i] = l.NumWeights()
	}
	return out
}

// AllWeights returns a snapshot copy of every injectable weight in layer
// order, used by the data-aware weight-distribution analysis.
func (n *Network) AllWeights() []float32 {
	out := make([]float32, 0, n.TotalWeights())
	for _, l := range n.WeightLayers() {
		out = append(out, l.WeightData()...)
	}
	return out
}

// Softmax converts scores to probabilities in a numerically stable way.
func Softmax(scores *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(scores.Shape...)
	if scores.Len() == 0 {
		return out
	}
	max := scores.Data[0]
	for _, v := range scores.Data[1:] {
		if v > max {
			max = v
		}
	}
	var sum float32
	for i, v := range scores.Data {
		e := exp32(v - max)
		out.Data[i] = e
		sum += e
	}
	if sum > 0 {
		for i := range out.Data {
			out.Data[i] /= sum
		}
	}
	return out
}

func exp32(v float32) float32 {
	return float32(math.Exp(float64(v)))
}

// Summary returns a human-readable table of the network's nodes: index,
// layer name, type, and (for weight layers) the parameter count and the
// paper-style weight-layer index.
func (n *Network) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d nodes, %d weight layers, %d parameters\n",
		n.NetName, len(n.Nodes), n.NumWeightLayers(), n.TotalWeights())
	wl := 0
	for i, node := range n.Nodes {
		fmt.Fprintf(&b, "%4d  %-22s %-16T", i, node.Layer.Name(), node.Layer)
		if l, ok := node.Layer.(WeightLayer); ok {
			fmt.Fprintf(&b, " L%-3d %8d params", wl, l.NumWeights())
			wl++
		}
		if len(node.Inputs) != 1 || node.Inputs[0] != i-1 {
			fmt.Fprintf(&b, "  inputs %v", node.Inputs)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
