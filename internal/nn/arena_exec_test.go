package nn

import (
	"math"
	"math/rand"
	"testing"

	"cnnsfi/internal/tensor"
)

// testNet builds a small network exercising every layer type in this
// package (conv direct + im2col + depthwise, batchnorm, both rectifiers,
// residual add, shortcut, all pools, flatten, linear) with deterministic
// pseudo-random weights.
func testNet(t testing.TB) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	fill := func(w []float32) {
		for i := range w {
			w[i] = float32(rng.NormFloat64()) * 0.3
		}
	}
	n := NewNetwork("arena-test")
	c0 := NewConv2D("conv0", 3, 8, 3, 1, 1, 1) // im2col path (8 outC, 16x16)
	fill(c0.W)
	n.Add(c0)
	bn := NewBatchNorm2D("bn0", 8)
	fill(bn.Mean)
	n.Add(bn)
	r0 := n.Add(&ReLU{Label: "relu0"})
	dw := NewConv2D("dw", 8, 8, 3, 1, 1, 8) // depthwise → direct path
	fill(dw.W)
	n.Add(dw)
	n.Add(&ReLU6{Label: "relu6"})
	sc := n.Add(&ShortcutA{Label: "sc", Stride: 1, OutC: 8}, r0)
	prev := len(n.Nodes) - 2 // relu6 node
	n.Add(&Add{Label: "add"}, prev, sc)
	n.Add(&MaxPool2D{Label: "maxpool", Kernel: 2, Stride: 2})
	n.Add(&AvgPool2D{Label: "avgpool", Kernel: 2, Stride: 2})
	n.Add(&GlobalAvgPool{Label: "gap"})
	n.Add(&Flatten{Label: "flat"})
	fc := NewLinear("fc", 8, 4)
	fill(fc.W)
	n.Add(fc)
	return n
}

func testInput(seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

// TestExecFromScratchMatchesExec pins the tentpole equivalence at the nn
// level: the arena execution path must reproduce the heap path bit for
// bit, for full runs and for every suffix start.
func TestExecFromScratchMatchesExec(t *testing.T) {
	n := testNet(t)
	for seed := int64(0); seed < 3; seed++ {
		x := testInput(seed)
		want := n.Exec(x)
		cache := n.Exec(x)
		scratch := make([]*tensor.Tensor, len(n.Nodes))
		for from := 0; from < len(n.Nodes); from++ {
			copy(scratch, cache)
			out := n.ExecFromScratch(x, scratch, from)
			for i := from; i < len(n.Nodes); i++ {
				if !tensor.SameShape(scratch[i], want[i]) {
					t.Fatalf("from=%d node %d shape %v, want %v", from, i, scratch[i].Shape, want[i].Shape)
				}
				for j := range want[i].Data {
					got := math.Float32bits(scratch[i].Data[j])
					exp := math.Float32bits(want[i].Data[j])
					if got != exp {
						t.Fatalf("from=%d node %d elem %d: %08x != %08x", from, i, j, got, exp)
					}
				}
			}
			if out != scratch[len(scratch)-1] {
				t.Fatalf("from=%d: returned tensor is not the last cache entry", from)
			}
		}
	}
}

// TestExecFromScratchSteadyStateAllocFree asserts the hot path reaches
// zero heap allocations once the arena is warm.
func TestExecFromScratchSteadyStateAllocFree(t *testing.T) {
	n := testNet(t)
	x := testInput(1)
	cache := n.Exec(x)
	scratch := make([]*tensor.Tensor, len(n.Nodes))
	run := func() {
		copy(scratch, cache)
		n.ExecFromScratch(x, scratch, 0)
	}
	run() // warm the arena
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("warm ExecFromScratch allocates %.1f times per run, want 0", allocs)
	}
}

// TestCloneArenaIndependent verifies clones never share arena state.
func TestCloneArenaIndependent(t *testing.T) {
	n := testNet(t)
	x := testInput(2)
	cache := n.Exec(x)
	scratch := make([]*tensor.Tensor, len(n.Nodes))
	copy(scratch, cache)
	n.ExecFromScratch(x, scratch, 0)
	if n.ScratchArena().Bytes() == 0 {
		t.Fatalf("owner arena did not grow")
	}
	c := n.Clone()
	if c.scratch != nil {
		t.Fatalf("clone inherited the parent's arena")
	}
	if c.ScratchArena() == n.ScratchArena() {
		t.Fatalf("clone's lazily created arena aliases the parent's")
	}
}
