package nn

import (
	"fmt"
	"sync"

	"cnnsfi/internal/tensor"
)

// This file is the batched execution seam: every layer in the package
// processes a whole batch (leading N dimension: NCHW activations, [N, F]
// vectors) in one ForwardBatch call. The contract is strict bit-identity
// with the single-image path — for every image n in the batch, the
// output slice [n·len : (n+1)·len] equals Forward on image n bit for
// bit. The batched kernels therefore reproduce the single-image kernels'
// per-element accumulation order exactly (GEMM accumulates k-ascending
// with zero-weight skips and is never blocked over k; pooling windows
// scan in the same ky→kx order), and may only differ in how they skip
// work that contributes nothing (padding positions are elided by
// precomputed valid ranges instead of per-element bounds tests).
//
// Parallelism: par is the goroutine budget for one batched call. par <= 1
// runs serially with zero goroutines and zero heap allocations (the hot
// path); par > 1 splits the batch (or the (channel, image) tile grid for
// the GEMM) into contiguous chunks, each computed by exactly one
// goroutine in the same serial order, so results are bit-identical at
// any par. Spawning allocates, which is the documented trade of
// parallelism for wall time. Arena allocations are always performed
// before any goroutine starts: the arena stays single-owner, the
// goroutines only write into pre-issued buffers.

// BatchLayer is a Layer that can process a batched input (leading N
// dimension) in one call. Every layer in this package implements it; the
// executor falls back to per-image Forward for out-of-tree layers.
type BatchLayer interface {
	Layer
	// ForwardBatch applies the layer to batched inputs, drawing the
	// output (and any scratch) from a when non-nil. par is the maximum
	// number of goroutines the call may use; par <= 1 must run serially
	// and allocation-free on the arena path. For every image in the
	// batch the result must be bit-identical to Forward on that image.
	ForwardBatch(a *tensor.Arena, par int, inputs ...*tensor.Tensor) *tensor.Tensor
}

// batchRange splits [0, n) into at most par contiguous chunks and runs
// fn on each chunk in its own goroutine, returning when all are done.
// Callers handle the serial case themselves (a direct call to the chunk
// kernel) so that the closure passed here is only ever created on the
// parallel path — keeping the serial hot path allocation-free.
func batchRange(par, n int, fn func(lo, hi int)) {
	if par > n {
		par = n
	}
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		lo, hi := g*n/par, (g+1)*n/par
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}

// batchDims returns the batch size and per-image element count of a
// batched tensor.
func batchDims(x *tensor.Tensor) (nb, sz int) {
	nb = x.Shape[0]
	if nb <= 0 {
		panic(fmt.Sprintf("nn: batched tensor with batch size %d", nb))
	}
	return nb, x.Len() / nb
}

// ForwardBatch implements BatchLayer.
func (r *ReLU) ForwardBatch(a *tensor.Arena, par int, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	nb, sz := batchDims(x)
	out := outTensor(a, x.Shape...)
	if par <= 1 || nb <= 1 {
		reluKernel(x.Data, out.Data)
		return out
	}
	batchRange(par, nb, func(lo, hi int) {
		reluKernel(x.Data[lo*sz:hi*sz], out.Data[lo*sz:hi*sz])
	})
	return out
}

func reluKernel(in, out []float32) {
	for i, v := range in {
		if v > 0 {
			out[i] = v
		}
	}
}

// ForwardBatch implements BatchLayer.
func (r *ReLU6) ForwardBatch(a *tensor.Arena, par int, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	nb, sz := batchDims(x)
	out := outTensor(a, x.Shape...)
	if par <= 1 || nb <= 1 {
		relu6Kernel(x.Data, out.Data)
		return out
	}
	batchRange(par, nb, func(lo, hi int) {
		relu6Kernel(x.Data[lo*sz:hi*sz], out.Data[lo*sz:hi*sz])
	})
	return out
}

func relu6Kernel(in, out []float32) {
	for i, v := range in {
		switch {
		case v <= 0:
		case v >= 6:
			out[i] = 6
		default:
			out[i] = v
		}
	}
}

// ForwardBatch implements BatchLayer.
func (a *Add) ForwardBatch(ar *tensor.Arena, par int, inputs ...*tensor.Tensor) *tensor.Tensor {
	x, y := inputs[0], inputs[1]
	if !tensor.SameShape(x, y) {
		panic(fmt.Sprintf("nn: Add shape mismatch %v vs %v", x.Shape, y.Shape))
	}
	nb, sz := batchDims(x)
	out := outTensor(ar, x.Shape...)
	if par <= 1 || nb <= 1 {
		addKernel(x.Data, y.Data, out.Data)
		return out
	}
	batchRange(par, nb, func(lo, hi int) {
		addKernel(x.Data[lo*sz:hi*sz], y.Data[lo*sz:hi*sz], out.Data[lo*sz:hi*sz])
	})
	return out
}

func addKernel(x, y, out []float32) {
	for i := range x {
		out[i] = x[i] + y[i]
	}
}

// ForwardBatch implements BatchLayer.
func (g *GlobalAvgPool) ForwardBatch(a *tensor.Arena, par int, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	nb, sz := batchDims(x)
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	out := outTensor(a, nb, c)
	if par <= 1 || nb <= 1 {
		gapKernel(x.Data, out.Data, 0, nb, c, h*w, sz)
		return out
	}
	batchRange(par, nb, func(lo, hi int) {
		gapKernel(x.Data, out.Data, lo, hi, c, h*w, sz)
	})
	return out
}

func gapKernel(in, out []float32, lo, hi, c, plane, sz int) {
	area := float32(plane)
	for n := lo; n < hi; n++ {
		img := in[n*sz : (n+1)*sz]
		o := out[n*c : (n+1)*c]
		for ci := 0; ci < c; ci++ {
			var sum float32
			for _, v := range img[ci*plane : (ci+1)*plane] {
				sum += v
			}
			o[ci] = sum / area
		}
	}
}

// ForwardBatch implements BatchLayer.
func (p *AvgPool2D) ForwardBatch(a *tensor.Arena, par int, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	nb, sz := batchDims(x)
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-p.Kernel)/p.Stride + 1
	ow := (w-p.Kernel)/p.Stride + 1
	out := outTensor(a, nb, c, oh, ow)
	osz := c * oh * ow
	if par <= 1 || nb <= 1 {
		p.kernelRange(x.Data, out.Data, 0, nb, c, h, w, oh, ow, sz, osz)
		return out
	}
	batchRange(par, nb, func(lo, hi int) {
		p.kernelRange(x.Data, out.Data, lo, hi, c, h, w, oh, ow, sz, osz)
	})
	return out
}

// kernelRange applies average pooling to images [lo, hi): the same
// window scan (ky outer, kx inner) and the same summation order as the
// single-image kernel.
func (p *AvgPool2D) kernelRange(in, out []float32, lo, hi, c, h, w, oh, ow, sz, osz int) {
	norm := float32(p.Kernel * p.Kernel)
	for n := lo; n < hi; n++ {
		img := in[n*sz : (n+1)*sz]
		o := out[n*osz : (n+1)*osz]
		for ci := 0; ci < c; ci++ {
			plane := img[ci*h*w : (ci+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var sum float32
					for ky := 0; ky < p.Kernel; ky++ {
						row := plane[(oy*p.Stride+ky)*w+ox*p.Stride:]
						for kx := 0; kx < p.Kernel; kx++ {
							sum += row[kx]
						}
					}
					o[(ci*oh+oy)*ow+ox] = sum / norm
				}
			}
		}
	}
}

// ForwardBatch implements BatchLayer.
func (p *MaxPool2D) ForwardBatch(a *tensor.Arena, par int, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	nb, sz := batchDims(x)
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-p.Kernel)/p.Stride + 1
	ow := (w-p.Kernel)/p.Stride + 1
	out := outTensor(a, nb, c, oh, ow)
	osz := c * oh * ow
	if par <= 1 || nb <= 1 {
		p.kernelRange(x.Data, out.Data, 0, nb, c, h, w, oh, ow, sz, osz)
		return out
	}
	batchRange(par, nb, func(lo, hi int) {
		p.kernelRange(x.Data, out.Data, lo, hi, c, h, w, oh, ow, sz, osz)
	})
	return out
}

// kernelRange applies max pooling to images [lo, hi), seeding each
// window with its top-left element and scanning ky→kx exactly like the
// single-image kernel (same comparisons, same NaN semantics).
func (p *MaxPool2D) kernelRange(in, out []float32, lo, hi, c, h, w, oh, ow, sz, osz int) {
	for n := lo; n < hi; n++ {
		img := in[n*sz : (n+1)*sz]
		o := out[n*osz : (n+1)*osz]
		for ci := 0; ci < c; ci++ {
			plane := img[ci*h*w : (ci+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := plane[(oy*p.Stride)*w+ox*p.Stride]
					for ky := 0; ky < p.Kernel; ky++ {
						row := plane[(oy*p.Stride+ky)*w+ox*p.Stride:]
						for kx := 0; kx < p.Kernel; kx++ {
							if v := row[kx]; v > best {
								best = v
							}
						}
					}
					o[(ci*oh+oy)*ow+ox] = best
				}
			}
		}
	}
}

// ForwardBatch implements BatchLayer.
func (f *Flatten) ForwardBatch(a *tensor.Arena, par int, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	nb, sz := batchDims(x)
	out := outTensor(a, nb, sz)
	copy(out.Data, x.Data)
	return out
}

// ForwardBatch implements BatchLayer.
func (s *ShortcutA) ForwardBatch(a *tensor.Arena, par int, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	nb, sz := batchDims(x)
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h + s.Stride - 1) / s.Stride
	ow := (w + s.Stride - 1) / s.Stride
	out := outTensor(a, nb, s.OutC, oh, ow)
	osz := s.OutC * oh * ow
	if par <= 1 || nb <= 1 {
		s.kernelRange(x.Data, out.Data, 0, nb, c, h, w, oh, ow, sz, osz)
		return out
	}
	batchRange(par, nb, func(lo, hi int) {
		s.kernelRange(x.Data, out.Data, lo, hi, c, h, w, oh, ow, sz, osz)
	})
	return out
}

// kernelRange subsamples images [lo, hi); channels ≥ c stay at the zero
// fill of the output tensor (the implicit channel padding).
func (s *ShortcutA) kernelRange(in, out []float32, lo, hi, c, h, w, oh, ow, sz, osz int) {
	for n := lo; n < hi; n++ {
		img := in[n*sz : (n+1)*sz]
		o := out[n*osz : (n+1)*osz]
		for ci := 0; ci < c && ci < s.OutC; ci++ {
			plane := img[ci*h*w : (ci+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				row := plane[(oy*s.Stride)*w:]
				orow := o[(ci*oh+oy)*ow:]
				for ox := 0; ox < ow; ox++ {
					orow[ox] = row[ox*s.Stride]
				}
			}
		}
	}
}

// ForwardBatch implements BatchLayer.
func (b *BatchNorm2D) ForwardBatch(a *tensor.Arena, par int, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	if b.scale == nil {
		b.Refold()
	}
	if x.Shape[1] != b.C {
		panic(fmt.Sprintf("nn: batchnorm %q expects %d channels, got %d", b.Label, b.C, x.Shape[1]))
	}
	nb, sz := batchDims(x)
	out := outTensor(a, x.Shape...)
	plane := x.Shape[2] * x.Shape[3]
	if par <= 1 || nb <= 1 {
		b.kernelRange(x.Data, out.Data, 0, nb, plane, sz)
		return out
	}
	batchRange(par, nb, func(lo, hi int) {
		b.kernelRange(x.Data, out.Data, lo, hi, plane, sz)
	})
	return out
}

func (b *BatchNorm2D) kernelRange(in, out []float32, lo, hi, plane, sz int) {
	for n := lo; n < hi; n++ {
		for c := 0; c < b.C; c++ {
			s, sh := b.scale[c], b.shift[c]
			src := in[n*sz+c*plane : n*sz+(c+1)*plane]
			o := out[n*sz+c*plane : n*sz+(c+1)*plane]
			for i, v := range src {
				o[i] = s*v + sh
			}
		}
	}
}

// ForwardBatch implements BatchLayer.
func (l *Linear) ForwardBatch(a *tensor.Arena, par int, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	nb, sz := batchDims(x)
	if sz != l.In {
		panic(fmt.Sprintf("nn: linear %q expects %d inputs, got %d", l.Label, l.In, sz))
	}
	out := outTensor(a, nb, l.Out)
	if par <= 1 || nb <= 1 {
		l.kernelRange(x.Data, out.Data, 0, nb)
		return out
	}
	batchRange(par, nb, func(lo, hi int) {
		l.kernelRange(x.Data, out.Data, lo, hi)
	})
	return out
}

func (l *Linear) kernelRange(in, out []float32, lo, hi int) {
	for n := lo; n < hi; n++ {
		xRow := in[n*l.In : (n+1)*l.In]
		oRow := out[n*l.Out : (n+1)*l.Out]
		for o := 0; o < l.Out; o++ {
			row := l.W[o*l.In : (o+1)*l.In]
			var sum float32
			for i, v := range xRow {
				sum += row[i] * v
			}
			if l.Bias != nil {
				sum += l.Bias[o]
			}
			oRow[o] = sum
		}
	}
}

// ForwardBatch implements BatchLayer. The algorithm choice (direct vs
// im2col) is the same per-layer decision as the single-image path — the
// two algorithms are not bit-interchangeable under faults (a padding tap
// is skipped by direct but multiplied by zero in im2col, which differs
// for NaN/Inf weights), so the batched executor must never switch.
func (c *Conv2D) ForwardBatch(a *tensor.Arena, par int, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	if x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: conv %q expects %d input channels, got %d", c.Label, c.InC, x.Shape[1]))
	}
	nb, sz := batchDims(x)
	h, w := x.Shape[2], x.Shape[3]
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	if c.useIm2col(oh, ow) {
		return c.forwardBatchIm2col(a, par, x, nb, h, w, oh, ow)
	}
	out := outTensor(a, nb, c.OutC, oh, ow)
	osz := c.OutC * oh * ow
	if par <= 1 || nb <= 1 {
		c.directRange(x.Data, out.Data, 0, nb, h, w, oh, ow, sz, osz)
		return out
	}
	batchRange(par, nb, func(lo, hi int) {
		c.directRange(x.Data, out.Data, lo, hi, h, w, oh, ow, sz, osz)
	})
	return out
}

// validRange returns the sub-range [lo, hi) of [0, n) whose indices i
// satisfy 0 <= i*stride+offset < limit — the output positions whose
// input tap lands inside the image. Iterating it ascending visits
// exactly the positions the bounds-checked single-image loop visits, in
// the same order.
func validRange(limit, stride, offset, n int) (lo, hi int) {
	if stride == 1 {
		return validRange1(limit, offset, n)
	}
	lo, hi = 0, n
	if offset < 0 {
		lo = (-offset + stride - 1) / stride
	}
	if m := limit - offset; m <= 0 {
		return 0, 0
	} else if q := (m-1)/stride + 1; q < hi {
		hi = q
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// validRange1 is validRange specialised for stride 1: no divisions, so
// the hot per-tap call costs a handful of ALU ops. An empty range may
// come back as (lo, lo) rather than (0, 0); callers only iterate it.
func validRange1(limit, offset, n int) (lo, hi int) {
	lo = 0
	if offset < 0 {
		lo = -offset
	}
	hi = limit - offset
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// directRange computes the direct convolution of images [lo, hi). The
// accumulation order per output element is identical to the single-image
// direct kernel — taps in (icLocal, ky, kx) order with zero-weight skips
// — but out-of-bounds taps are elided by precomputed valid ranges
// instead of per-element tests, and the stride-1 inner loop runs over
// aligned slices.
func (c *Conv2D) directRange(in, out []float32, lo, hi, h, w, oh, ow, sz, osz int) {
	c.directRangeOC(in, out, lo, hi, 0, c.OutC, h, w, oh, ow, sz, osz)
}

// directRangeOC is directRange restricted to output channels
// [ocLo, ocHi). The oc loop of the direct kernel is embarrassingly
// independent — each channel accumulates from its own weight rows only —
// so restricting it yields bit-identical planes for the channels it does
// compute; ExecBatchFromScratchChannel uses that to recompute just the
// faulted channel of the faulted layer.
func (c *Conv2D) directRangeOC(in, out []float32, lo, hi, ocLo, ocHi, h, w, oh, ow, sz, osz int) {
	icg := c.InC / c.Groups
	ocg := c.OutC / c.Groups
	ksize := icg * c.KH * c.KW
	stride1 := c.Stride == 1
	for n := lo; n < hi; n++ {
		img := in[n*sz : (n+1)*sz]
		o := out[n*osz : (n+1)*osz]
		for oc := ocLo; oc < ocHi; oc++ {
			g := oc / ocg
			wBase := oc * ksize
			outPlane := o[oc*oh*ow : (oc+1)*oh*ow]
			for icLocal := 0; icLocal < icg; icLocal++ {
				ic := g*icg + icLocal
				inPlane := img[ic*h*w : (ic+1)*h*w]
				wOff := wBase + icLocal*c.KH*c.KW
				for ky := 0; ky < c.KH; ky++ {
					oyLo, oyHi := validRange(h, c.Stride, ky-c.Pad, oh)
					for kx := 0; kx < c.KW; kx++ {
						wv := c.W[wOff+ky*c.KW+kx]
						if wv == 0 {
							continue
						}
						oxLo, oxHi := validRange(w, c.Stride, kx-c.Pad, ow)
						if oxLo >= oxHi {
							continue
						}
						if stride1 {
							if oxLo == 0 && oxHi == ow && ow == w {
								// Full rows with matching row strides: the
								// whole (oyHi-oyLo)×ow block is contiguous
								// in both planes (kx == Pad here, so the
								// input block starts on a row boundary).
								// One long loop replaces per-row slicing.
								src := inPlane[(oyLo+ky-c.Pad)*w : (oyHi+ky-c.Pad)*w]
								dst := outPlane[oyLo*w:]
								dst = dst[:len(src)]
								for i, v := range src {
									dst[i] += wv * v
								}
								continue
							}
							for oy := oyLo; oy < oyHi; oy++ {
								iy := oy + ky - c.Pad
								src := inPlane[iy*w+oxLo+kx-c.Pad : iy*w+oxHi+kx-c.Pad]
								dst := outPlane[oy*ow+oxLo:]
								dst = dst[:len(src)]
								for i, v := range src {
									dst[i] += wv * v
								}
							}
							continue
						}
						for oy := oyLo; oy < oyHi; oy++ {
							iy := oy*c.Stride + ky - c.Pad
							rowOut := outPlane[oy*ow+oxLo : oy*ow+oxHi]
							ix := oxLo*c.Stride + kx - c.Pad
							base := inPlane[iy*w:]
							for i := range rowOut {
								rowOut[i] += wv * base[ix]
								ix += c.Stride
							}
						}
					}
				}
			}
			if c.Bias != nil {
				if bias := c.Bias[oc]; bias != 0 {
					for i := range outPlane {
						outPlane[i] += bias
					}
				}
			}
		}
	}
}

// forwardBatchIm2col gathers one patch matrix for the whole batch —
// buf[k][n·cols + col], row stride nb·cols — and reduces the convolution
// to a blocked GEMM over (output channel, image) tiles. Blocking never
// splits the k dimension: each output element accumulates k-ascending
// with zero-weight skips, exactly like the single-image GEMM, so the
// tiles can run on any goroutine without changing a single bit.
func (c *Conv2D) forwardBatchIm2col(a *tensor.Arena, par int, x *tensor.Tensor, nb, h, w, oh, ow int) *tensor.Tensor {
	cols := oh * ow
	ksize := c.InC * c.KH * c.KW
	rowStride := nb * cols
	buf := c.batchPatchMatrix(a, par, x, nb, h, w, oh, ow)

	// Blocked GEMM over (oc, image) tiles, oc-major so each weight row
	// streams across the whole batch before the next row is touched.
	out := outTensor(a, nb, c.OutC, oh, ow)
	if par <= 1 || nb*c.OutC <= 1 {
		c.gemmTiles(buf, out.Data, 0, c.OutC*nb, nb, cols, ksize, rowStride)
		return out
	}
	batchRange(par, c.OutC*nb, func(lo, hi int) {
		c.gemmTiles(buf, out.Data, lo, hi, nb, cols, ksize, rowStride)
	})
	return out
}

// batchPatchMatrix gathers the batched im2col patch matrix
// buf[k][n·cols + col] (row stride nb·cols) from the arena when one is
// supplied, the heap otherwise.
func (c *Conv2D) batchPatchMatrix(a *tensor.Arena, par int, x *tensor.Tensor, nb, h, w, oh, ow int) []float32 {
	cols := oh * ow
	ksize := c.InC * c.KH * c.KW
	rowStride := nb * cols
	var buf []float32
	if a != nil {
		buf = a.Scratch(ksize * rowStride)
	} else {
		buf = make([]float32, ksize*rowStride)
	}
	imgSz := c.InC * h * w
	// Gather, one image per column block (parallel over images).
	if par <= 1 || nb <= 1 {
		c.gatherRange(x.Data, buf, 0, nb, h, w, oh, ow, imgSz, cols, rowStride)
	} else {
		batchRange(par, nb, func(lo, hi int) {
			c.gatherRange(x.Data, buf, lo, hi, h, w, oh, ow, imgSz, cols, rowStride)
		})
	}
	return buf
}

// copyGoldenExcept fills out with golden's planes for every output
// channel except skip, whose plane is left at out's zero fill so the
// caller can accumulate it from scratch.
func copyGoldenExcept(out, golden []float32, nb, outC, plane, skip int) {
	for n := 0; n < nb; n++ {
		base := n * outC * plane
		for ch := 0; ch < outC; ch++ {
			if ch == skip {
				continue
			}
			lo := base + ch*plane
			copy(out[lo:lo+plane], golden[lo:lo+plane])
		}
	}
}

// forwardBatchChannel computes the conv's batched output with only
// output channel oc recomputed; every other channel's plane is copied
// from the golden output (bit-identical by determinism: those channels'
// weights are untouched and each output channel accumulates
// independently, in both the direct and the GEMM kernel). The
// recomputed channel runs the same algorithm the full kernel would —
// the choice must never differ between paths (see ForwardBatch).
func (c *Conv2D) forwardBatchChannel(a *tensor.Arena, par int, x, golden *tensor.Tensor, oc int) *tensor.Tensor {
	nb, sz := batchDims(x)
	h, w := x.Shape[2], x.Shape[3]
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	cols := oh * ow
	out := outTensor(a, nb, c.OutC, oh, ow)
	copyGoldenExcept(out.Data, golden.Data, nb, c.OutC, cols, oc)

	if c.useIm2col(oh, ow) {
		ksize := c.InC * c.KH * c.KW
		rowStride := nb * cols
		buf := c.batchPatchMatrix(a, par, x, nb, h, w, oh, ow)
		lo, hi := oc*nb, (oc+1)*nb
		if par <= 1 || nb <= 1 {
			c.gemmTiles(buf, out.Data, lo, hi, nb, cols, ksize, rowStride)
			return out
		}
		batchRange(par, hi-lo, func(tlo, thi int) {
			c.gemmTiles(buf, out.Data, lo+tlo, lo+thi, nb, cols, ksize, rowStride)
		})
		return out
	}

	osz := c.OutC * cols
	if par <= 1 || nb <= 1 {
		c.directRangeOC(x.Data, out.Data, 0, nb, oc, oc+1, h, w, oh, ow, sz, osz)
		return out
	}
	batchRange(par, nb, func(lo, hi int) {
		c.directRangeOC(x.Data, out.Data, lo, hi, oc, oc+1, h, w, oh, ow, sz, osz)
	})
	return out
}

// gatherRange fills the batched patch matrix for images [lo, hi). The
// per-image gather writes the same values as the single-image gather
// (padding positions stay at the zero fill), using span copies for the
// stride-1 fast path.
func (c *Conv2D) gatherRange(in, buf []float32, lo, hi, h, w, oh, ow, imgSz, cols, rowStride int) {
	for n := lo; n < hi; n++ {
		img := in[n*imgSz : (n+1)*imgSz]
		base := n * cols
		k := 0
		for ic := 0; ic < c.InC; ic++ {
			plane := img[ic*h*w : (ic+1)*h*w]
			for ky := 0; ky < c.KH; ky++ {
				oyLo, oyHi := validRange(h, c.Stride, ky-c.Pad, oh)
				for kx := 0; kx < c.KW; kx++ {
					row := buf[k*rowStride+base : k*rowStride+base+cols]
					oxLo, oxHi := validRange(w, c.Stride, kx-c.Pad, ow)
					if oxLo < oxHi {
						for oy := oyLo; oy < oyHi; oy++ {
							iy := oy*c.Stride + ky - c.Pad
							dst := row[oy*ow+oxLo : oy*ow+oxHi]
							if c.Stride == 1 {
								copy(dst, plane[iy*w+oxLo+kx-c.Pad:])
							} else {
								ix := oxLo*c.Stride + kx - c.Pad
								src := plane[iy*w:]
								for i := range dst {
									dst[i] = src[ix]
									ix += c.Stride
								}
							}
						}
					}
					k++
				}
			}
		}
	}
}

// gemmTiles computes output tiles [lo, hi) of the (oc-major) × (image)
// tile grid: tile t is output channel t/nb of image t%nb. k is never
// split across tiles.
func (c *Conv2D) gemmTiles(buf, out []float32, lo, hi, nb, cols, ksize, rowStride int) {
	for t := lo; t < hi; t++ {
		oc, n := t/nb, t%nb
		wRow := c.W[oc*ksize : (oc+1)*ksize]
		base := n * cols
		dst := out[(n*c.OutC+oc)*cols : (n*c.OutC+oc+1)*cols]
		for kk, wv := range wRow {
			if wv == 0 {
				continue
			}
			src := buf[kk*rowStride+base : kk*rowStride+base+cols]
			d := dst[:len(src)]
			for i, v := range src {
				d[i] += wv * v
			}
		}
		if c.Bias != nil {
			b := c.Bias[oc]
			for i := range dst {
				dst[i] += b
			}
		}
	}
}
