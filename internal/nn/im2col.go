package nn

import "cnnsfi/internal/tensor"

// ConvAlgo selects a convolution implementation.
type ConvAlgo uint8

// Convolution algorithms.
const (
	// ConvAuto picks per call: im2col for non-grouped convolutions with
	// enough work to amortize the gather, direct otherwise.
	ConvAuto ConvAlgo = iota
	// ConvDirect is the straightforward loop nest.
	ConvDirect
	// ConvIm2col gathers input patches into a dense matrix and reduces
	// the convolution to row-times-matrix products (better locality, no
	// per-element padding checks in the inner loop).
	ConvIm2col
)

// forwardIm2col computes the convolution by patch gathering. Only valid
// for Groups == 1. The patch matrix and output come from a when non-nil;
// the gather relies on both starting zero-filled (padding positions are
// never written).
func (c *Conv2D) forwardIm2col(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	h, w := x.Shape[1], x.Shape[2]
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	cols := oh * ow
	ksize := c.InC * c.KH * c.KW

	// Gather: buf[k*cols + col] = x[patch k of output position col].
	var buf []float32
	if a != nil {
		buf = a.Scratch(ksize * cols)
	} else {
		buf = make([]float32, ksize*cols)
	}
	k := 0
	for ic := 0; ic < c.InC; ic++ {
		plane := x.Data[ic*h*w : (ic+1)*h*w]
		for ky := 0; ky < c.KH; ky++ {
			for kx := 0; kx < c.KW; kx++ {
				row := buf[k*cols : (k+1)*cols]
				col := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					if iy < 0 || iy >= h {
						col += ow
						continue
					}
					src := plane[iy*w : iy*w+w]
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if ix >= 0 && ix < w {
							row[col] = src[ix]
						}
						col++
					}
				}
				k++
			}
		}
	}

	// GEMM: out[oc] = W[oc] · buf.
	out := outTensor(a, c.OutC, oh, ow)
	for oc := 0; oc < c.OutC; oc++ {
		wRow := c.W[oc*ksize : (oc+1)*ksize]
		dst := out.Data[oc*cols : (oc+1)*cols]
		for kk, wv := range wRow {
			if wv == 0 {
				continue
			}
			src := buf[kk*cols : (kk+1)*cols]
			for i, v := range src {
				dst[i] += wv * v
			}
		}
		if c.Bias != nil {
			b := c.Bias[oc]
			for i := range dst {
				dst[i] += b
			}
		}
	}
	return out
}

// useIm2col is the ConvAuto heuristic: grouped (depthwise) convolutions
// always run direct; otherwise im2col pays off once there is enough
// arithmetic per gathered element.
func (c *Conv2D) useIm2col(oh, ow int) bool {
	switch c.Algo {
	case ConvDirect:
		return false
	case ConvIm2col:
		return c.Groups == 1
	default:
		return c.Groups == 1 && c.OutC >= 8 && oh*ow >= 64
	}
}
