package nn

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"cnnsfi/internal/tensor"
)

// naiveConv is an obviously-correct reference convolution used to verify
// the optimized Conv2D.Forward.
func naiveConv(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	h, w := x.Shape[1], x.Shape[2]
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	out := tensor.New(c.OutC, oh, ow)
	icg := c.InC / c.Groups
	ocg := c.OutC / c.Groups
	for oc := 0; oc < c.OutC; oc++ {
		g := oc / ocg
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var sum float64
				for icl := 0; icl < icg; icl++ {
					ic := g*icg + icl
					for ky := 0; ky < c.KH; ky++ {
						for kx := 0; kx < c.KW; kx++ {
							iy := oy*c.Stride + ky - c.Pad
							ix := ox*c.Stride + kx - c.Pad
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							wv := c.W[((oc*icg+icl)*c.KH+ky)*c.KW+kx]
							sum += float64(wv) * float64(x.At3(ic, iy, ix))
						}
					}
				}
				if c.Bias != nil {
					sum += float64(c.Bias[oc])
				}
				out.Set3(oc, oy, ox, float32(sum))
			}
		}
	}
	return out
}

func randomize(rng *rand.Rand, data []float32, scale float64) {
	for i := range data {
		data[i] = float32((rng.Float64()*2 - 1) * scale)
	}
}

func tensorsClose(t *testing.T, got, want *tensor.Tensor, tol float64) {
	t.Helper()
	if !tensor.SameShape(got, want) {
		t.Fatalf("shape mismatch: %v vs %v", got.Shape, want.Shape)
	}
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > tol {
			t.Fatalf("element %d: got %v want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name                          string
		inC, outC, k, stride, pad, gr int
		h, w                          int
		bias                          bool
	}{
		{"3x3 same", 3, 16, 3, 1, 1, 1, 8, 8, false},
		{"3x3 stride2", 16, 32, 3, 2, 1, 1, 8, 8, false},
		{"1x1 pointwise", 8, 24, 1, 1, 0, 1, 5, 5, false},
		{"depthwise", 8, 8, 3, 1, 1, 8, 6, 6, false},
		{"depthwise stride2", 8, 8, 3, 2, 1, 8, 7, 7, false},
		{"grouped", 8, 12, 3, 1, 1, 4, 6, 6, false},
		{"biased", 4, 6, 3, 1, 1, 1, 5, 5, true},
		{"5x5 nopad", 3, 4, 5, 1, 0, 1, 9, 9, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConv2D(tc.name, tc.inC, tc.outC, tc.k, tc.stride, tc.pad, tc.gr)
			randomize(rng, c.W, 0.5)
			if tc.bias {
				c.Bias = make([]float32, tc.outC)
				randomize(rng, c.Bias, 0.5)
			}
			x := tensor.New(tc.inC, tc.h, tc.w)
			randomize(rng, x.Data, 1)
			tensorsClose(t, c.Forward(x), naiveConv(c, x), 1e-4)
		})
	}
}

func TestConv2DKnownValue(t *testing.T) {
	// 1-channel 1x1 kernel = scalar multiply.
	c := NewConv2D("id", 1, 1, 1, 1, 0, 1)
	c.W[0] = 2
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	out := c.Forward(x)
	want := []float32{2, 4, 6, 8}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("got %v", out.Data)
		}
	}
}

func TestConv2DOutSize(t *testing.T) {
	c := NewConv2D("t", 3, 8, 3, 2, 1, 1)
	if got := c.OutSize(32); got != 16 {
		t.Errorf("OutSize(32) = %d, want 16", got)
	}
	c2 := NewConv2D("t2", 3, 8, 3, 1, 1, 1)
	if got := c2.OutSize(32); got != 32 {
		t.Errorf("same-pad OutSize(32) = %d, want 32", got)
	}
}

func TestNewConv2DPanicsOnBadGroups(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad groups did not panic")
		}
	}()
	NewConv2D("bad", 3, 8, 3, 1, 1, 2)
}

func TestConv2DPanicsOnWrongChannels(t *testing.T) {
	c := NewConv2D("t", 3, 8, 3, 1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("wrong channel count did not panic")
		}
	}()
	c.Forward(tensor.New(4, 8, 8))
}

func TestLinear(t *testing.T) {
	l := NewLinear("fc", 3, 2)
	copy(l.W, []float32{1, 2, 3, 4, 5, 6})
	x := tensor.FromSlice([]float32{1, 1, 1}, 3)
	out := l.Forward(x)
	if out.Data[0] != 6 || out.Data[1] != 15 {
		t.Errorf("linear = %v", out.Data)
	}
	l.Bias = []float32{10, 20}
	out = l.Forward(x)
	if out.Data[0] != 16 || out.Data[1] != 35 {
		t.Errorf("biased linear = %v", out.Data)
	}
}

func TestLinearPanicsOnBadInput(t *testing.T) {
	l := NewLinear("fc", 3, 2)
	defer func() {
		if recover() == nil {
			t.Error("bad linear input did not panic")
		}
	}()
	l.Forward(tensor.New(4))
}

func TestReLU(t *testing.T) {
	r := &ReLU{Label: "relu"}
	out := r.Forward(tensor.FromSlice([]float32{-1, 0, 2.5}, 3))
	if out.Data[0] != 0 || out.Data[1] != 0 || out.Data[2] != 2.5 {
		t.Errorf("relu = %v", out.Data)
	}
}

func TestReLU6(t *testing.T) {
	r := &ReLU6{Label: "relu6"}
	out := r.Forward(tensor.FromSlice([]float32{-1, 3, 7, 6}, 4))
	want := []float32{0, 3, 6, 6}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("relu6 = %v", out.Data)
		}
	}
}

func TestAdd(t *testing.T) {
	a := &Add{Label: "add"}
	x := tensor.FromSlice([]float32{1, 2}, 2)
	y := tensor.FromSlice([]float32{10, 20}, 2)
	out := a.Forward(x, y)
	if out.Data[0] != 11 || out.Data[1] != 22 {
		t.Errorf("add = %v", out.Data)
	}
}

func TestAddPanicsOnShapeMismatch(t *testing.T) {
	a := &Add{Label: "add"}
	defer func() {
		if recover() == nil {
			t.Error("mismatched add did not panic")
		}
	}()
	a.Forward(tensor.New(2), tensor.New(3))
}

func TestGlobalAvgPool(t *testing.T) {
	g := &GlobalAvgPool{Label: "gap"}
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 2, 2, 2)
	out := g.Forward(x)
	if out.Data[0] != 2.5 || out.Data[1] != 25 {
		t.Errorf("gap = %v", out.Data)
	}
}

func TestAvgPool2D(t *testing.T) {
	p := &AvgPool2D{Label: "avg", Kernel: 2, Stride: 2}
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 4, 4)
	out := p.Forward(x)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("avgpool = %v", out.Data)
		}
	}
}

func TestMaxPool2D(t *testing.T) {
	p := &MaxPool2D{Label: "max", Kernel: 2, Stride: 2}
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 4, 4)
	out := p.Forward(x)
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("maxpool = %v", out.Data)
		}
	}
}

func TestFlatten(t *testing.T) {
	f := &Flatten{Label: "flat"}
	out := f.Forward(tensor.New(2, 3, 4))
	if out.Rank() != 1 || out.Len() != 24 {
		t.Errorf("flatten shape = %v", out.Shape)
	}
}

func TestShortcutA(t *testing.T) {
	s := &ShortcutA{Label: "sc", Stride: 2, OutC: 4}
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out := s.Forward(x)
	if out.Shape[0] != 4 || out.Shape[1] != 2 || out.Shape[2] != 2 {
		t.Fatalf("shortcut shape = %v", out.Shape)
	}
	// Subsampled first channel takes every other pixel.
	if out.At3(0, 0, 0) != 1 || out.At3(0, 0, 1) != 3 || out.At3(0, 1, 0) != 9 || out.At3(0, 1, 1) != 11 {
		t.Errorf("shortcut data wrong: %v", out.Data[:4])
	}
	// Padded channels are zero.
	for c := 1; c < 4; c++ {
		for i := 0; i < 4; i++ {
			if out.Data[c*4+i] != 0 {
				t.Fatal("padded channel not zero")
			}
		}
	}
}

func TestBatchNorm2D(t *testing.T) {
	bn := NewBatchNorm2D("bn", 2)
	bn.Gamma = []float32{2, 1}
	bn.Beta = []float32{1, 0}
	bn.Mean = []float32{1, 0}
	bn.Var = []float32{4, 1}
	bn.Eps = 0
	bn.Refold()
	x := tensor.FromSlice([]float32{3, 5, 2, 4}, 2, 2, 1)
	out := bn.Forward(x)
	// channel0: 2*(x-1)/2+1 = x  → 3, 5
	if math.Abs(float64(out.Data[0]-3)) > 1e-5 || math.Abs(float64(out.Data[1]-5)) > 1e-5 {
		t.Errorf("bn channel0 = %v", out.Data[:2])
	}
	// channel1: identity → 2, 4
	if math.Abs(float64(out.Data[2]-2)) > 1e-5 || math.Abs(float64(out.Data[3]-4)) > 1e-5 {
		t.Errorf("bn channel1 = %v", out.Data[2:])
	}
}

func TestBatchNormIdentityDefault(t *testing.T) {
	bn := NewBatchNorm2D("bn", 1)
	bn.Eps = 0
	bn.Refold()
	x := tensor.FromSlice([]float32{1.5, -2}, 1, 2, 1)
	out := bn.Forward(x)
	if out.Data[0] != 1.5 || out.Data[1] != -2 {
		t.Errorf("default bn not identity: %v", out.Data)
	}
}

func buildTinyNet() *Network {
	n := NewNetwork("tiny")
	c1 := NewConv2D("conv0", 1, 2, 3, 1, 1, 1)
	for i := range c1.W {
		c1.W[i] = float32(i%5) * 0.1
	}
	n.Add(c1)
	n.Add(&ReLU{Label: "relu0"})
	c2 := NewConv2D("conv1", 2, 2, 3, 1, 1, 1)
	for i := range c2.W {
		c2.W[i] = float32(i%3) * 0.2
	}
	id2 := n.Add(c2)
	n.Add(&Add{Label: "res"}, 1, id2) // residual from relu0
	n.Add(&GlobalAvgPool{Label: "gap"})
	fc := NewLinear("fc", 2, 3)
	for i := range fc.W {
		fc.W[i] = float32(i) * 0.1
	}
	n.Add(fc)
	return n
}

func TestNetworkForwardAndWeightLayers(t *testing.T) {
	n := buildTinyNet()
	if n.NumWeightLayers() != 3 {
		t.Fatalf("weight layers = %d, want 3", n.NumWeightLayers())
	}
	counts := n.LayerParamCounts()
	if counts[0] != 18 || counts[1] != 36 || counts[2] != 6 {
		t.Errorf("param counts = %v", counts)
	}
	if n.TotalWeights() != 60 {
		t.Errorf("total weights = %d", n.TotalWeights())
	}
	x := tensor.New(1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i) * 0.05
	}
	out := n.Forward(x)
	if out.Len() != 3 {
		t.Fatalf("output len = %d", out.Len())
	}
	if n.Predict(x) != out.ArgMax() {
		t.Error("Predict disagrees with Forward+ArgMax")
	}
}

func TestNetworkAllWeights(t *testing.T) {
	n := buildTinyNet()
	all := n.AllWeights()
	if len(all) != n.TotalWeights() {
		t.Fatalf("AllWeights len = %d", len(all))
	}
	// It must be a snapshot: mutating it must not alter the network.
	before := n.WeightLayers()[0].WeightData()[0]
	all[0] = 999
	if n.WeightLayers()[0].WeightData()[0] != before {
		t.Error("AllWeights aliases live weights")
	}
}

func TestExecFromMatchesFullExec(t *testing.T) {
	n := buildTinyNet()
	x := tensor.New(1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i%7) * 0.1
	}
	full := n.Exec(x)
	want := full[len(full)-1]

	// Perturb conv1's weights, then recompute from its node index only.
	wl := n.WeightLayers()[1].(*Conv2D)
	old := wl.W[0]
	wl.W[0] += 0.5
	fromNode := n.WeightNodeIndex(1)

	cache := n.Exec(x) // fresh reference with fault
	fault := make([]*tensor.Tensor, len(full))
	copy(fault, full)
	got := n.ExecFrom(x, fault, fromNode)
	tensorsClose(t, got, cache[len(cache)-1], 1e-6)

	// Restore and recompute: must match the original output again.
	wl.W[0] = old
	restored := make([]*tensor.Tensor, len(full))
	copy(restored, full)
	got = n.ExecFrom(x, restored, fromNode)
	tensorsClose(t, got, want, 0)
}

func TestExecFromPanicsOnBadCache(t *testing.T) {
	n := buildTinyNet()
	defer func() {
		if recover() == nil {
			t.Error("bad cache did not panic")
		}
	}()
	n.ExecFrom(tensor.New(1, 4, 4), make([]*tensor.Tensor, 1), 0)
}

func TestAddNodeValidatesInputs(t *testing.T) {
	n := NewNetwork("bad")
	defer func() {
		if recover() == nil {
			t.Error("invalid input reference did not panic")
		}
	}()
	n.Add(&ReLU{Label: "r"}, 5)
}

func TestSoftmax(t *testing.T) {
	out := Softmax(tensor.FromSlice([]float32{1, 2, 3}, 3))
	var sum float32
	for _, v := range out.Data {
		sum += v
	}
	if math.Abs(float64(sum-1)) > 1e-5 {
		t.Errorf("softmax sum = %v", sum)
	}
	if !(out.Data[2] > out.Data[1] && out.Data[1] > out.Data[0]) {
		t.Error("softmax not monotone")
	}
	// Stability: huge scores must not produce NaN.
	out = Softmax(tensor.FromSlice([]float32{1e30, 1e30}, 2))
	if math.IsNaN(float64(out.Data[0])) {
		t.Error("softmax unstable")
	}
}

func BenchmarkConv2D3x3(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D("bench", 16, 16, 3, 1, 1, 1)
	randomize(rng, c.W, 0.2)
	x := tensor.New(16, 32, 32)
	randomize(rng, x.Data, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x)
	}
}

func BenchmarkConv2DDepthwise(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D("bench", 32, 32, 3, 1, 1, 32)
	randomize(rng, c.W, 0.2)
	x := tensor.New(32, 16, 16)
	randomize(rng, x.Data, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x)
	}
}

func TestIm2colMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cases := []struct {
		inC, outC, k, stride, pad int
		h, w                      int
		bias                      bool
	}{
		{3, 16, 3, 1, 1, 16, 16, false},
		{16, 32, 3, 2, 1, 16, 16, false},
		{8, 24, 1, 1, 0, 9, 9, false},
		{4, 6, 5, 1, 2, 11, 11, true},
		{2, 8, 3, 1, 0, 7, 5, false},
	}
	for _, tc := range cases {
		c := NewConv2D("t", tc.inC, tc.outC, tc.k, tc.stride, tc.pad, 1)
		randomize(rng, c.W, 0.3)
		if tc.bias {
			c.Bias = make([]float32, tc.outC)
			randomize(rng, c.Bias, 0.3)
		}
		x := tensor.New(tc.inC, tc.h, tc.w)
		randomize(rng, x.Data, 1)

		c.Algo = ConvDirect
		direct := c.Forward(x)
		c.Algo = ConvIm2col
		fast := c.Forward(x)
		tensorsClose(t, fast, direct, 1e-4)
	}
}

func TestConvAutoUsesDirectForDepthwise(t *testing.T) {
	c := NewConv2D("dw", 8, 8, 3, 1, 1, 8)
	if c.useIm2col(16, 16) {
		t.Error("depthwise conv must not use im2col")
	}
	c2 := NewConv2D("big", 16, 32, 3, 1, 1, 1)
	if !c2.useIm2col(16, 16) {
		t.Error("large dense conv should use im2col under auto")
	}
	c2.Algo = ConvDirect
	if c2.useIm2col(16, 16) {
		t.Error("explicit direct overridden")
	}
}

func BenchmarkConvDirectVsIm2col(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	for _, algo := range []struct {
		name string
		a    ConvAlgo
	}{{"direct", ConvDirect}, {"im2col", ConvIm2col}} {
		b.Run(algo.name, func(b *testing.B) {
			c := NewConv2D("bench", 16, 16, 3, 1, 1, 1)
			c.Algo = algo.a
			randomize(rng, c.W, 0.2)
			x := tensor.New(16, 32, 32)
			randomize(rng, x.Data, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Forward(x)
			}
		})
	}
}

func TestNetworkSummary(t *testing.T) {
	n := buildTinyNet()
	s := n.Summary()
	for _, want := range []string{"tiny", "conv0", "fc", "L0", "L2", "18 params", "inputs [1 2]"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
