package nn

import (
	"math"
	"math/rand"
	"testing"

	"cnnsfi/internal/tensor"
)

// batchInput stacks nb deterministic test images into one NCHW tensor.
func batchInput(nb int) *tensor.Tensor {
	x := tensor.New(nb, 3, 16, 16)
	sz := 3 * 16 * 16
	for n := 0; n < nb; n++ {
		img := testInput(int64(n))
		copy(x.Data[n*sz:(n+1)*sz], img.Data)
	}
	return x
}

// TestExecBatchMatchesPerImage pins the batched seam's core contract:
// for every image in the batch, every node's batched output slice must
// equal the single-image Exec output bit for bit — at serial and
// parallel goroutine budgets.
func TestExecBatchMatchesPerImage(t *testing.T) {
	for _, par := range []int{1, 3} {
		n := testNet(t)
		n.SetBatchParallelism(par)
		const nb = 3
		x := batchInput(nb)
		got := n.ExecBatch(x)
		for img := 0; img < nb; img++ {
			want := n.Exec(testInput(int64(img)))
			for i := range n.Nodes {
				if got[i].Shape[0] != nb {
					t.Fatalf("par=%d node %d batch dim %d, want %d", par, i, got[i].Shape[0], nb)
				}
				sz := got[i].Len() / nb
				if sz != want[i].Len() {
					t.Fatalf("par=%d node %d per-image size %d, want %d", par, i, sz, want[i].Len())
				}
				slice := got[i].Data[img*sz : (img+1)*sz]
				for j := range want[i].Data {
					g, e := math.Float32bits(slice[j]), math.Float32bits(want[i].Data[j])
					if g != e {
						t.Fatalf("par=%d image %d node %d elem %d: %08x != %08x", par, img, i, j, g, e)
					}
				}
			}
		}
	}
}

// TestExecBatchFromScratchMatchesHeap is the batched counterpart of
// TestExecFromScratchMatchesExec: the arena path must reproduce the heap
// path bit for bit for every suffix start.
func TestExecBatchFromScratchMatchesHeap(t *testing.T) {
	n := testNet(t)
	for _, nb := range []int{1, 2, 4} {
		x := batchInput(nb)
		want := n.ExecBatch(x)
		cache := n.ExecBatch(x)
		scratch := make([]*tensor.Tensor, len(n.Nodes))
		for from := 0; from < len(n.Nodes); from++ {
			copy(scratch, cache)
			out := n.ExecBatchFromScratch(x, scratch, from)
			for i := from; i < len(n.Nodes); i++ {
				if !tensor.SameShape(scratch[i], want[i]) {
					t.Fatalf("nb=%d from=%d node %d shape %v, want %v", nb, from, i, scratch[i].Shape, want[i].Shape)
				}
				for j := range want[i].Data {
					got := math.Float32bits(scratch[i].Data[j])
					exp := math.Float32bits(want[i].Data[j])
					if got != exp {
						t.Fatalf("nb=%d from=%d node %d elem %d: %08x != %08x", nb, from, i, j, got, exp)
					}
				}
			}
			if out != scratch[len(scratch)-1] {
				t.Fatalf("nb=%d from=%d: returned tensor is not the last cache entry", nb, from)
			}
		}
	}
}

// TestExecBatchFromScratchSteadyStateAllocFree asserts the batched hot
// path reaches zero heap allocations once the arena is warm (serial
// batch parallelism, the default).
func TestExecBatchFromScratchSteadyStateAllocFree(t *testing.T) {
	n := testNet(t)
	x := batchInput(4)
	cache := n.ExecBatch(x)
	scratch := make([]*tensor.Tensor, len(n.Nodes))
	run := func() {
		copy(scratch, cache)
		n.ExecBatchFromScratch(x, scratch, 0)
	}
	run() // warm the arena
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("warm ExecBatchFromScratch allocates %.1f times per run, want 0", allocs)
	}
}

// TestExecBatchFromScratchChannelMatchesFull pins the channel-partial
// recompute: for every conv node and every output channel, perturbing
// one weight of that channel and re-executing via
// ExecBatchFromScratchChannel must reproduce the full
// ExecBatchFromScratch suffix bit for bit (testNet's conv0 takes the
// GEMM path and its depthwise conv the direct path, so both algorithms
// are covered). Non-conv nodes and oc = -1 must fall back to the full
// recompute.
func TestExecBatchFromScratchChannelMatchesFull(t *testing.T) {
	n := testNet(t)
	const nb = 3
	x := batchInput(nb)
	cache := n.ExecBatch(x)
	scratch := make([]*tensor.Tensor, len(n.Nodes))
	full := make([]*tensor.Tensor, len(n.Nodes))

	check := func(node, oc int) {
		t.Helper()
		copy(full, cache)
		n.ExecBatchFrom(x, full, node) // heap full recompute, arena untouched
		copy(scratch, cache)
		out := n.ExecBatchFromScratchChannel(x, scratch, node, oc)
		for i := node; i < len(n.Nodes); i++ {
			for j := range full[i].Data {
				got := math.Float32bits(scratch[i].Data[j])
				exp := math.Float32bits(full[i].Data[j])
				if got != exp {
					t.Fatalf("node %d oc %d: suffix node %d elem %d: %08x != %08x", node, oc, i, j, got, exp)
				}
			}
		}
		if out != scratch[len(scratch)-1] {
			t.Fatalf("node %d oc %d: returned tensor is not the last cache entry", node, oc)
		}
	}

	for _, node := range []int{0, 3} { // conv0 (im2col), dw (direct)
		conv := n.Nodes[node].Layer.(*Conv2D)
		for oc := 0; oc < conv.OutC; oc++ {
			w := conv.W[oc*len(conv.W)/conv.OutC]
			conv.W[oc*len(conv.W)/conv.OutC] = w + 0.5 // fault one weight of channel oc
			check(node, oc)
			conv.W[oc*len(conv.W)/conv.OutC] = w
		}
		check(node, -1) // fall back to full recompute
	}
	check(1, 2)  // BatchNorm2D node: non-conv fallback ignores oc
	check(11, 0) // Linear node: non-conv fallback
}

// TestExecBatchFaultedWeights re-checks batched ≡ per-image with a NaN
// and an Inf planted in conv weights: the algorithm choice and skip
// behavior must stay aligned even for non-finite weights, where a
// skipped tap and a ×0 tap differ. NaN elements are compared by class,
// not bit pattern: which NaN payload an Inf−Inf or NaN-propagating
// accumulation yields is left to the compiler's instruction scheduling
// (it differs between separately compiled but semantically identical
// loops), while NaN-ness itself — the only property any verdict or
// comparison can observe — is deterministic.
func TestExecBatchFaultedWeights(t *testing.T) {
	n := testNet(t)
	c0 := n.Nodes[0].Layer.(*Conv2D)
	dw := n.Nodes[3].Layer.(*Conv2D)
	c0.W[5] = float32(math.Inf(1))
	dw.W[3] = float32(math.NaN())
	const nb = 2
	x := batchInput(nb)
	got := n.ExecBatch(x)
	for img := 0; img < nb; img++ {
		want := n.Exec(testInput(int64(img)))
		for i := range n.Nodes {
			sz := got[i].Len() / nb
			slice := got[i].Data[img*sz : (img+1)*sz]
			for j := range want[i].Data {
				gv, ev := slice[j], want[i].Data[j]
				if gv != gv && ev != ev {
					continue // both NaN
				}
				g, e := math.Float32bits(gv), math.Float32bits(ev)
				if g != e {
					t.Fatalf("image %d node %d elem %d: %08x != %08x", img, i, j, g, e)
				}
			}
		}
	}
}

// fallbackLayer is an out-of-tree layer without BatchLayer support; the
// batched executor must route it through per-image Forward.
type fallbackLayer struct{}

func (f *fallbackLayer) Name() string { return "fallback" }

func (f *fallbackLayer) Forward(inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// TestExecBatchFallbackPerImage checks the per-image fallback for layers
// that do not implement BatchLayer.
func TestExecBatchFallbackPerImage(t *testing.T) {
	n := NewNetwork("fallback-test")
	c0 := NewConv2D("conv0", 3, 4, 3, 1, 1, 1)
	rng := rand.New(rand.NewSource(3))
	for i := range c0.W {
		c0.W[i] = float32(rng.NormFloat64())
	}
	n.Add(c0)
	n.Add(&fallbackLayer{})
	const nb = 2
	x := batchInput(nb)
	got := n.ExecBatch(x)
	for img := 0; img < nb; img++ {
		want := n.Exec(testInput(int64(img)))
		last := len(n.Nodes) - 1
		sz := got[last].Len() / nb
		slice := got[last].Data[img*sz : (img+1)*sz]
		for j := range want[last].Data {
			g, e := math.Float32bits(slice[j]), math.Float32bits(want[last].Data[j])
			if g != e {
				t.Fatalf("image %d elem %d: %08x != %08x", img, j, g, e)
			}
		}
	}
}
