package nn

import (
	"math/rand"
	"testing"

	"cnnsfi/internal/tensor"
)

// cloneTestNet builds a small conv→bn→relu→gap→linear network with
// random weights; enough structure to exercise every Clone concern
// (two weight-layer kinds, a lazily-folded BatchNorm, stateless
// layers).
func cloneTestNet() *Network {
	rng := rand.New(rand.NewSource(7))
	n := NewNetwork("clone-test")
	c := NewConv2D("conv", 2, 4, 3, 1, 1, 1)
	randomize(rng, c.W, 0.5)
	n.Add(c)
	n.Add(NewBatchNorm2D("bn", 4))
	n.Add(&ReLU{Label: "relu"})
	n.Add(&GlobalAvgPool{Label: "gap"})
	l := NewLinear("fc", 4, 3)
	randomize(rng, l.W, 0.5)
	n.Add(l)
	return n
}

// TestCloneWeightsIndependent: mutating a clone's weights must leave
// the original bit-exact, and vice versa — the property RunParallel's
// per-worker injector clones rely on.
func TestCloneWeightsIndependent(t *testing.T) {
	orig := cloneTestNet()
	clone := orig.Clone()

	before := orig.AllWeights()
	for _, wl := range clone.WeightLayers() {
		w := wl.WeightData()
		for i := range w {
			w[i] = -99
		}
	}
	after := orig.AllWeights()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("weight %d of the original changed through the clone", i)
		}
	}

	orig.WeightLayers()[0].WeightData()[0] = 42
	if clone.WeightLayers()[0].WeightData()[0] == 42 {
		t.Fatal("weight written on the original leaked into the clone")
	}
}

// TestClonePredictsIdentically: same input, same scores — the clone
// shares the graph and stateless layers and copies only weights.
func TestClonePredictsIdentically(t *testing.T) {
	orig := cloneTestNet()
	clone := orig.Clone()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		x := tensor.New(2, 8, 8)
		randomize(rng, x.Data, 1)
		a, b := orig.Forward(x), clone.Forward(x)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("trial %d: clone output diverges at %d: %v != %v",
					trial, i, b.Data[i], a.Data[i])
			}
		}
	}
}

// TestCloneRefoldsBatchNorm: Clone must eagerly fold shared BatchNorm
// layers so concurrent first Forwards never race on the lazy fold.
func TestCloneRefoldsBatchNorm(t *testing.T) {
	orig := cloneTestNet()
	bn := orig.Nodes[1].Layer.(*BatchNorm2D)
	if bn.scale != nil {
		t.Fatal("test premise broken: BatchNorm folded before Clone")
	}
	orig.Clone()
	if bn.scale == nil {
		t.Fatal("Clone left the shared BatchNorm unfolded")
	}
}

// TestCloneKeepsMetadata: the clone must be a drop-in Network — same
// name, layer count, weight-layer indexing and totals.
func TestCloneKeepsMetadata(t *testing.T) {
	orig := cloneTestNet()
	clone := orig.Clone()
	if clone.NetName != orig.NetName {
		t.Errorf("name %q, want %q", clone.NetName, orig.NetName)
	}
	if len(clone.Nodes) != len(orig.Nodes) {
		t.Errorf("nodes %d, want %d", len(clone.Nodes), len(orig.Nodes))
	}
	if clone.TotalWeights() != orig.TotalWeights() {
		t.Errorf("total weights %d, want %d", clone.TotalWeights(), orig.TotalWeights())
	}
	if len(clone.WeightLayers()) != len(orig.WeightLayers()) {
		t.Errorf("weight layers %d, want %d", len(clone.WeightLayers()), len(orig.WeightLayers()))
	}
}
