// Package nn implements the CNN inference (and, together with package
// train, training) substrate: convolution, batch normalization, ReLU /
// ReLU6, residual addition, pooling, and fully-connected layers, composed
// into a directed acyclic graph with named, injectable weight layers.
//
// The fault-injection methodology of the paper targets the static
// parameters (weights) of convolutional and fully-connected layers; those
// layers implement WeightLayer and expose their raw float32 storage so
// that the injector can mutate single bits in place and revert them.
package nn

import (
	"fmt"

	"cnnsfi/internal/tensor"
)

// Layer transforms a single CHW activation tensor. Implementations must
// be safe for repeated calls; they may not retain the input.
type Layer interface {
	// Name returns a short human-readable identifier.
	Name() string
	// Forward applies the layer to one input (layers with multiple
	// inputs, such as Add, receive them in order).
	Forward(inputs ...*tensor.Tensor) *tensor.Tensor
}

// ArenaLayer is a Layer that can draw its output tensor (and any
// internal scratch buffers) from a caller-owned tensor.Arena instead of
// the heap. Every layer in this package implements it; the interface
// exists so Network.execRange can dispatch without knowing concrete
// types, and so out-of-tree layers without arena support still work (the
// executor falls back to Forward for them).
//
// The contract mirrors Forward exactly — same output values, bit for
// bit — with arena semantics layered on top: the returned tensor is
// valid only until the arena's next Reset, and the layer may not retain
// it or the inputs. Callers are responsible for the arena's single-owner
// discipline (see tensor.Arena).
type ArenaLayer interface {
	Layer
	// ForwardArena is Forward with all allocations redirected to a.
	ForwardArena(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor
}

// outTensor allocates a zero-filled output tensor from the arena when
// one is supplied (the injection hot path) or from the heap when a is
// nil (the plain Forward path). Layer kernels rely on the zero fill:
// they accumulate into the output or write only selected elements.
func outTensor(a *tensor.Arena, shape ...int) *tensor.Tensor {
	if a != nil {
		return a.Get(shape...)
	}
	return tensor.New(shape...)
}

// WeightLayer is a layer whose static parameters are part of the fault
// population (convolutions and fully-connected layers in the paper).
type WeightLayer interface {
	Layer
	// WeightData returns the raw backing slice of the layer's weights.
	// Mutating an element injects a fault; the injector saves and
	// restores values around each experiment.
	WeightData() []float32
	// NumWeights returns len(WeightData()).
	NumWeights() int
}

// WeightCloner is implemented by weight layers that can produce an
// independent copy whose weight storage is detached from the original.
// Network.Clone relies on it to build per-worker networks for
// concurrent fault injection: fault campaigns mutate only WeightData,
// so a clone with fresh weight storage is fully isolated even when the
// rest of the layer state is shared.
type WeightCloner interface {
	WeightLayer
	// CloneWeights returns a copy of the layer with freshly allocated
	// weight storage holding the same values. State that injection
	// never mutates (bias, hyperparameters) may be shared.
	CloneWeights() WeightLayer
}

// ReLU applies max(0, x) elementwise.
type ReLU struct{ Label string }

// Name returns the layer label.
func (r *ReLU) Name() string { return r.Label }

// Forward applies the rectifier.
func (r *ReLU) Forward(inputs ...*tensor.Tensor) *tensor.Tensor {
	return r.forward(nil, inputs...)
}

// ForwardArena implements ArenaLayer.
func (r *ReLU) ForwardArena(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	return r.forward(a, inputs...)
}

func (r *ReLU) forward(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	out := outTensor(a, x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// ReLU6 applies min(max(0, x), 6), the activation used by MobileNetV2.
type ReLU6 struct{ Label string }

// Name returns the layer label.
func (r *ReLU6) Name() string { return r.Label }

// Forward applies the clipped rectifier.
func (r *ReLU6) Forward(inputs ...*tensor.Tensor) *tensor.Tensor {
	return r.forward(nil, inputs...)
}

// ForwardArena implements ArenaLayer.
func (r *ReLU6) ForwardArena(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	return r.forward(a, inputs...)
}

func (r *ReLU6) forward(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	out := outTensor(a, x.Shape...)
	for i, v := range x.Data {
		switch {
		case v <= 0:
		case v >= 6:
			out.Data[i] = 6
		default:
			out.Data[i] = v
		}
	}
	return out
}

// Add sums two activation tensors of identical shape (residual join).
type Add struct{ Label string }

// Name returns the layer label.
func (a *Add) Name() string { return a.Label }

// Forward returns inputs[0] + inputs[1]. It panics on shape mismatch.
func (a *Add) Forward(inputs ...*tensor.Tensor) *tensor.Tensor {
	return a.forward(nil, inputs...)
}

// ForwardArena implements ArenaLayer.
func (a *Add) ForwardArena(ar *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	return a.forward(ar, inputs...)
}

func (a *Add) forward(ar *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	x, y := inputs[0], inputs[1]
	if !tensor.SameShape(x, y) {
		panic(fmt.Sprintf("nn: Add shape mismatch %v vs %v", x.Shape, y.Shape))
	}
	out := outTensor(ar, x.Shape...)
	for i := range x.Data {
		out.Data[i] = x.Data[i] + y.Data[i]
	}
	return out
}

// GlobalAvgPool reduces a CHW tensor to a length-C vector by averaging
// each channel plane.
type GlobalAvgPool struct{ Label string }

// Name returns the layer label.
func (g *GlobalAvgPool) Name() string { return g.Label }

// Forward averages over the spatial dimensions.
func (g *GlobalAvgPool) Forward(inputs ...*tensor.Tensor) *tensor.Tensor {
	return g.forward(nil, inputs...)
}

// ForwardArena implements ArenaLayer.
func (g *GlobalAvgPool) ForwardArena(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	return g.forward(a, inputs...)
}

func (g *GlobalAvgPool) forward(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	out := outTensor(a, c)
	area := float32(h * w)
	for ci := 0; ci < c; ci++ {
		var sum float32
		plane := x.Data[ci*h*w : (ci+1)*h*w]
		for _, v := range plane {
			sum += v
		}
		out.Data[ci] = sum / area
	}
	return out
}

// AvgPool2D averages non-overlapping or strided k×k windows.
type AvgPool2D struct {
	Label  string
	Kernel int
	Stride int
}

// Name returns the layer label.
func (p *AvgPool2D) Name() string { return p.Label }

// Forward applies average pooling with implicit valid padding.
func (p *AvgPool2D) Forward(inputs ...*tensor.Tensor) *tensor.Tensor {
	return p.forward(nil, inputs...)
}

// ForwardArena implements ArenaLayer.
func (p *AvgPool2D) ForwardArena(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	return p.forward(a, inputs...)
}

func (p *AvgPool2D) forward(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh := (h-p.Kernel)/p.Stride + 1
	ow := (w-p.Kernel)/p.Stride + 1
	out := outTensor(a, c, oh, ow)
	norm := float32(p.Kernel * p.Kernel)
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var sum float32
				for ky := 0; ky < p.Kernel; ky++ {
					for kx := 0; kx < p.Kernel; kx++ {
						sum += x.At3(ci, oy*p.Stride+ky, ox*p.Stride+kx)
					}
				}
				out.Set3(ci, oy, ox, sum/norm)
			}
		}
	}
	return out
}

// MaxPool2D takes the maximum over strided k×k windows.
type MaxPool2D struct {
	Label  string
	Kernel int
	Stride int
}

// Name returns the layer label.
func (p *MaxPool2D) Name() string { return p.Label }

// Forward applies max pooling with implicit valid padding.
func (p *MaxPool2D) Forward(inputs ...*tensor.Tensor) *tensor.Tensor {
	return p.forward(nil, inputs...)
}

// ForwardArena implements ArenaLayer.
func (p *MaxPool2D) ForwardArena(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	return p.forward(a, inputs...)
}

func (p *MaxPool2D) forward(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh := (h-p.Kernel)/p.Stride + 1
	ow := (w-p.Kernel)/p.Stride + 1
	out := outTensor(a, c, oh, ow)
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := x.At3(ci, oy*p.Stride, ox*p.Stride)
				for ky := 0; ky < p.Kernel; ky++ {
					for kx := 0; kx < p.Kernel; kx++ {
						if v := x.At3(ci, oy*p.Stride+ky, ox*p.Stride+kx); v > best {
							best = v
						}
					}
				}
				out.Set3(ci, oy, ox, best)
			}
		}
	}
	return out
}

// Flatten reshapes any tensor into a vector.
type Flatten struct{ Label string }

// Name returns the layer label.
func (f *Flatten) Name() string { return f.Label }

// Forward returns a rank-1 view-copy of the input.
func (f *Flatten) Forward(inputs ...*tensor.Tensor) *tensor.Tensor {
	return f.forward(nil, inputs...)
}

// ForwardArena implements ArenaLayer.
func (f *Flatten) ForwardArena(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	return f.forward(a, inputs...)
}

func (f *Flatten) forward(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	out := outTensor(a, x.Len())
	copy(out.Data, x.Data)
	return out
}

// ShortcutA implements the parameter-free "option A" residual shortcut of
// the original CIFAR ResNet: spatial subsampling by Stride and zero-
// padding the channel dimension up to OutC. It has no weights, so it
// contributes nothing to the fault population (matching the paper's
// ResNet-20 layer table, which lists only the 19 convolutions and the
// final fully-connected layer).
type ShortcutA struct {
	Label  string
	Stride int
	OutC   int
}

// Name returns the layer label.
func (s *ShortcutA) Name() string { return s.Label }

// Forward subsamples spatially and zero-pads channels.
func (s *ShortcutA) Forward(inputs ...*tensor.Tensor) *tensor.Tensor {
	return s.forward(nil, inputs...)
}

// ForwardArena implements ArenaLayer.
func (s *ShortcutA) ForwardArena(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	return s.forward(a, inputs...)
}

func (s *ShortcutA) forward(a *tensor.Arena, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh := (h + s.Stride - 1) / s.Stride
	ow := (w + s.Stride - 1) / s.Stride
	out := outTensor(a, s.OutC, oh, ow)
	for ci := 0; ci < c && ci < s.OutC; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				out.Set3(ci, oy, ox, x.At3(ci, oy*s.Stride, ox*s.Stride))
			}
		}
	}
	return out
}
