package sfi_test

import (
	"bytes"
	"testing"

	"cnnsfi/sfi"
)

// TestEndToEndWorkflow exercises the full public API surface the way the
// package documentation advertises it.
func TestEndToEndWorkflow(t *testing.T) {
	net, err := sfi.BuildModel("smallcnn", 1)
	if err != nil {
		t.Fatal(err)
	}
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	cfg := sfi.DefaultConfig()
	space := sfi.StuckAtSpace(net)

	o := sfi.NewOracle(net, sfi.OracleDefaults(3))
	truth := make([]float64, space.NumLayers())
	for l := range truth {
		truth[l] = o.ExhaustiveLayerRate(l)
	}

	for _, plan := range []*sfi.Plan{
		sfi.PlanNetworkWise(space, cfg),
		sfi.PlanLayerWise(space, cfg),
		sfi.PlanDataUnaware(space, cfg),
		sfi.PlanDataAware(space, cfg, analysis.P),
	} {
		res := sfi.Run(o, plan, 0)
		cmp := sfi.Compare(res, truth)
		if cmp.Injections != plan.TotalInjections() {
			t.Errorf("%s: injections mismatch", plan.Approach)
		}
		if cmp.NetworkEstimate.PHat() < 0 || cmp.NetworkEstimate.PHat() > 1 {
			t.Errorf("%s: implausible network estimate", plan.Approach)
		}
	}
}

func TestInjectorSatisfiesEvaluator(t *testing.T) {
	net, _ := sfi.BuildModel("smallcnn", 1)
	ds := sfi.SyntheticDataset(sfi.DatasetConfig{N: 4, Seed: 1, Size: 16})
	var ev sfi.Evaluator = sfi.NewInjector(net, ds)
	plan := sfi.PlanNetworkWise(ev.Space(), sfi.DefaultConfig())
	// Shrink the campaign for test speed: sample only the plan's first
	// 50 faults by restricting the subpopulation.
	plan.Subpops[0].SampleSize = 50
	res := sfi.Run(ev, plan, 0)
	if res.Injections() != 50 {
		t.Errorf("injections = %d", res.Injections())
	}
}

func TestTrainingPath(t *testing.T) {
	net := sfi.TrainableSmallCNN(1)
	ds := sfi.SyntheticDataset(sfi.DatasetConfig{N: 40, Seed: 2, Size: 16, Noise: 0.1})
	tr, err := sfi.NewTrainer(net, 0.002, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	losses := tr.Fit(ds, 3)
	if losses[2] >= losses[0] {
		t.Errorf("training did not reduce loss: %v", losses)
	}
	if acc := sfi.Accuracy(net, ds); acc <= 0.1 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestBitFlipSpaceHalvesPopulation(t *testing.T) {
	net, _ := sfi.BuildModel("smallcnn", 1)
	sa := sfi.StuckAtSpace(net)
	bf := sfi.BitFlipSpace(net)
	if sa.Total() != 2*bf.Total() {
		t.Errorf("stuck-at %d != 2 × bit-flip %d", sa.Total(), bf.Total())
	}
}

func TestAnalyzeWeightsInOtherFormats(t *testing.T) {
	net, _ := sfi.BuildModel("smallcnn", 1)
	w := net.AllWeights()
	if got := len(sfi.AnalyzeWeightsIn(w, sfi.FP16).P); got != 16 {
		t.Errorf("fp16 bits = %d", got)
	}
	if got := len(sfi.AnalyzeWeightsIn(w, sfi.BF16).P); got != 16 {
		t.Errorf("bf16 bits = %d", got)
	}
	if got := len(sfi.AnalyzeWeightsIn(w, sfi.FP32).P); got != 32 {
		t.Errorf("fp32 bits = %d", got)
	}
}

func TestModelNames(t *testing.T) {
	names := sfi.ModelNames()
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if _, err := sfi.BuildModel(n, 1); err != nil {
			t.Errorf("BuildModel(%q): %v", n, err)
		}
	}
}

func TestActivationInjectorWorkflow(t *testing.T) {
	net, _ := sfi.BuildModel("smallcnn", 1)
	ds := sfi.SyntheticDataset(sfi.DatasetConfig{N: 2, Seed: 1, Size: 16})
	act := sfi.NewActivationInjector(net, ds)
	space := act.Space()
	if space.NumLayers() != 4 {
		t.Fatalf("activation layers = %d", space.NumLayers())
	}
	// It plugs into the same planner/runner machinery.
	cfg := sfi.DefaultConfig()
	cfg.ErrorMargin = 0.1 // tiny campaign for test speed
	plan := sfi.PlanLayerWise(space, cfg)
	res := sfi.Run(act, plan, 0)
	if res.Injections() != plan.TotalInjections() {
		t.Error("activation campaign incomplete")
	}
}

func TestINT8AnalysisWorkflow(t *testing.T) {
	net, _ := sfi.BuildModel("smallcnn", 1)
	a := sfi.AnalyzeWeightsINT8(net.AllWeights())
	if len(a.P) != 8 {
		t.Fatalf("int8 bits = %d", len(a.P))
	}
	// The sign bit (7) dominates in the integer representation.
	for i := 0; i < 7; i++ {
		if a.P[7] < a.P[i] {
			t.Errorf("int8 bit 7 should dominate bit %d", i)
		}
	}
}

func TestRankingAndSerializationWorkflow(t *testing.T) {
	net, _ := sfi.BuildModel("smallcnn", 1)
	o := sfi.NewOracle(net, sfi.OracleDefaults(3))
	plan := sfi.PlanDataUnaware(o.Space(), sfi.DefaultConfig())
	res := sfi.Run(o, plan, 0)

	if got := res.MostCriticalBit(); got != 30 {
		t.Errorf("most critical bit = %d", got)
	}
	ranks := res.RankLayers()
	if len(ranks) != 4 {
		t.Fatalf("ranks = %d", len(ranks))
	}
	_ = sfi.TopSeparated(ranks, sfi.DefaultConfig())

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := sfi.ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.MostCriticalBit() != 30 {
		t.Error("reloaded result disagrees")
	}
}

func TestResNetFamilyViaFacade(t *testing.T) {
	for _, name := range []string{"resnet32", "resnet44", "resnet56"} {
		net, err := sfi.BuildModel(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if net.NetName != name {
			t.Errorf("name = %q", net.NetName)
		}
	}
}

func TestFacadeCoverageSweep(t *testing.T) {
	net, _ := sfi.BuildModel("smallcnn", 1)

	// Checkpointing wrappers.
	var buf bytes.Buffer
	if err := sfi.SaveWeights(net, &buf); err != nil {
		t.Fatal(err)
	}
	clone, _ := sfi.BuildModel("smallcnn", 2)
	if err := sfi.LoadWeights(clone, &buf); err != nil {
		t.Fatal(err)
	}
	wa, wb := net.AllWeights(), clone.AllWeights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("checkpoint wrappers lost weights")
		}
	}

	// Parallel runner wrapper.
	o := sfi.NewOracle(net, sfi.OracleDefaults(3))
	plan := sfi.PlanLayerWise(o.Space(), sfi.DefaultConfig())
	serial := sfi.Run(o, plan, 1)
	parallel := sfi.RunParallel(o, plan, 1, 2)
	if serial.Injections() != parallel.Injections() {
		t.Error("parallel wrapper mismatch")
	}

	// Reliability wrappers.
	res := sfi.Run(o, sfi.PlanDataUnaware(o.Space(), sfi.DefaultConfig()), 0)
	rep, err := sfi.AssessReliability(res, sfi.SERConfig{RawFITPerBit: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SDCFIT <= 0 {
		t.Error("zero FIT")
	}
	if r := sfi.MissionReliability(rep.SDCFIT, 1e4); r <= 0 || r > 1 {
		t.Errorf("mission reliability = %v", r)
	}
	if sfi.RequiredFIT(0.99, 1e4) <= 0 {
		t.Error("required FIT")
	}

	// Per-layer analysis wrapper.
	pl := sfi.AnalyzeWeightsPerLayer(net)
	if len(pl.P()) != 4 {
		t.Errorf("per-layer rows = %d", len(pl.P()))
	}
	if sfi.PlanDataAwarePerLayer(o.Space(), sfi.DefaultConfig(), pl.P()).TotalInjections() <= 0 {
		t.Error("per-layer plan empty")
	}
}

func TestMBUFacade(t *testing.T) {
	net, _ := sfi.BuildModel("smallcnn", 1)
	ds := sfi.SyntheticDataset(sfi.DatasetConfig{N: 4, Seed: 1, Size: 16})
	inj := sfi.NewInjector(net, ds)
	seed := sfi.Fault{Layer: 0, Param: 0, Bit: 28}
	burst := sfi.AdjacentMBU(seed, 3)
	if len(burst) != 3 {
		t.Fatalf("burst = %v", burst)
	}
	_ = inj.IsCriticalMulti(burst) // must not panic and must restore
	before := net.AllWeights()
	inj.IsCriticalMulti(burst)
	after := net.AllWeights()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("MBU experiment leaked weight mutation")
		}
	}
}
