// Package sfi is the public API of the statistical fault injection (SFI)
// library, a reproduction of "Assessing Convolutional Neural Networks
// Reliability through Statistical Fault Injections" (Ruospo et al.,
// DATE 2023).
//
// The typical workflow:
//
//	net, _ := sfi.BuildModel("resnet20", 1)
//	analysis := sfi.AnalyzeWeights(net.AllWeights())      // Figs. 3-4
//	cfg := sfi.DefaultConfig()                            // e=1%, 99%, t=2.58
//	space := sfi.StuckAtSpace(net)                        // 17.2M faults
//	plan := sfi.PlanDataAware(space, cfg, analysis.P)     // Table I column
//	oracle := sfi.NewOracle(net, sfi.OracleDefaults(3))   // ground truth
//	result := sfi.RunParallel(oracle, plan, 0, 0)         // all cores
//	estimate := result.LayerEstimate(14)                  // p̂ ± margin
//
// For inference-based injection on a real (small) network, replace the
// oracle with sfi.NewInjector(net, dataset). Both satisfy Evaluator,
// and both run under RunParallel: the injector clones its network
// weights per worker (WorkerCloner), the oracle is concurrency-safe as
// is. Run and RunParallel are deterministic in the seed — the same seed
// yields a bit-identical Result at any worker count — so parallelism
// never changes the statistics.
//
// Both are thin wrappers over the campaign Engine, which adds the
// operational controls long campaigns need: context cancellation and
// deadlines, streaming progress events, checkpoint/resume (an
// interrupted campaign resumes bit-identically at the same seed), and
// margin-based early stop:
//
//	eng := sfi.NewEngine(
//		sfi.WithWorkers(0),                   // all cores
//		sfi.WithProgress(printProgress),      // streaming events
//		sfi.WithCheckpoint("run.ckpt"),       // periodic + on-cancel
//		sfi.WithResume(),                     // continue if run.ckpt exists
//		sfi.WithEarlyStop(0),                 // stop strata at achieved e
//	)
//	result, err := eng.Execute(ctx, oracle, plan, 0)
//
// Everything here is a thin re-export of the internal packages; see
// DESIGN.md for the package inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package sfi

import (
	"io"
	"net/http"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/dataaware"
	"cnnsfi/internal/dataset"
	"cnnsfi/internal/evalstats"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/fp"
	"cnnsfi/internal/inject"
	"cnnsfi/internal/models"
	"cnnsfi/internal/nn"
	"cnnsfi/internal/oracle"
	"cnnsfi/internal/quantize"
	"cnnsfi/internal/reliability"
	"cnnsfi/internal/service"
	"cnnsfi/internal/stats"
	"cnnsfi/internal/train"
)

// Core methodology types.
type (
	// Network is a CNN with injectable weight layers.
	Network = nn.Network
	// Dataset is a labeled image set.
	Dataset = dataset.Dataset
	// DatasetConfig parameterizes the synthetic dataset generator.
	DatasetConfig = dataset.Config
	// Fault addresses one stuck-at or bit-flip fault.
	Fault = faultmodel.Fault
	// FaultSpace is a fault universe with subpopulation indexing.
	FaultSpace = faultmodel.Space
	// Config carries the Eq. 1 parameters (error margin, confidence, p).
	Config = stats.SampleSizeConfig
	// Plan is a campaign specification (the content of Tables I-II).
	Plan = core.Plan
	// Subpopulation is one stratum of a plan.
	Subpopulation = core.Subpopulation
	// Result is an executed campaign.
	Result = core.Result
	// Comparison judges a result against exhaustive ground truth
	// (Table III, Figs. 5-7).
	Comparison = core.Comparison
	// LayerComparison is one layer's row of a Comparison.
	LayerComparison = core.LayerComparison
	// Approach is one of the four SFI strategies.
	Approach = core.Approach
	// Evaluator classifies faults (inference-based or simulated).
	Evaluator = core.Evaluator
	// WorkerCloner is an Evaluator that supplies per-worker clones for
	// RunParallel (implemented by Injector; the Oracle and the
	// ActivationInjector are concurrency-safe without cloning).
	WorkerCloner = core.WorkerCloner
	// Injector is the inference-based evaluator (PyTorchFI equivalent).
	Injector = inject.Injector
	// Oracle is the full-scale simulated evaluator.
	Oracle = oracle.Oracle
	// OracleConfig tunes the oracle's criticality surface.
	OracleConfig = oracle.Config
	// Analysis is a data-aware weight-distribution analysis (Figs. 3-4).
	Analysis = dataaware.Analysis
	// Estimate is a proportion estimate with finite-population margins.
	Estimate = stats.ProportionEstimate
	// StratifiedEstimate combines per-stratum estimates with the correct
	// stratified margin (what LayerEstimate and NetworkEstimate return).
	StratifiedEstimate = stats.Stratified
	// Trainer runs SGD on a sequential network.
	Trainer = train.Trainer
	// ActivationInjector injects transient bit-flips on activations.
	ActivationInjector = inject.ActivationInjector
	// INT8Analysis is the data-aware analysis of INT8-quantized weights.
	INT8Analysis = quantize.Analysis
	// PerLayerAnalysis holds one data-aware analysis per weight layer.
	PerLayerAnalysis = dataaware.PerLayer
	// LayerRank is one entry of a per-layer vulnerability ranking.
	LayerRank = core.LayerRank
	// BitRank is one entry of a per-bit vulnerability ranking.
	BitRank = core.BitRank
	// SERConfig is the raw soft-error assumption (FIT per memory bit).
	SERConfig = reliability.SERConfig
	// ReliabilityReport is the SDC FIT assessment of a campaign result.
	ReliabilityReport = reliability.Report
	// Protection is a selective bit-protection scenario.
	Protection = reliability.Protection
	// Format is a floating-point representation (FP32/FP16/BF16).
	Format = fp.Format
	// Engine is the unified campaign executor behind Run/RunParallel,
	// with cancellation, progress streaming, checkpoint/resume, and
	// margin-based early stop (see NewEngine and the With* options).
	Engine = core.Engine
	// EngineOption configures an Engine (functional options).
	EngineOption = core.Option
	// Progress is one streaming status event of a running campaign.
	Progress = core.Progress
	// ProgressSink consumes streaming Progress events.
	ProgressSink = core.ProgressSink
	// EvalStats breaks down how an evaluator resolved a campaign's
	// experiments: masked-fault skips (classified Non-critical with no
	// inference), full evaluations, SDC early exits, and the scratch
	// arena bytes retained by the allocation-free hot path. Surfaced
	// per campaign in Progress.Eval and cumulatively via the
	// StatsReporter interface.
	EvalStats = core.EvalStats
	// StatsReporter is implemented by evaluators that track EvalStats
	// (both the inference Injector and the Oracle do).
	StatsReporter = core.StatsReporter
	// TraceEvent is one structured engine event (campaign/stratum/shard
	// lifecycle, early stops, checkpoints); see WithTrace.
	TraceEvent = core.TraceEvent
	// TraceKind discriminates TraceEvents.
	TraceKind = core.TraceKind
	// TraceSink consumes structured engine events; the
	// internal/telemetry Tracer records them as JSONL.
	TraceSink = core.TraceSink
	// LatencyHistogram is the lock-free power-of-two histogram
	// evaluators feed through the LatencySampler seam.
	LatencyHistogram = evalstats.Histogram
	// LatencySampler is implemented by evaluators that can time
	// individual experiments (both the Injector and the Oracle do).
	LatencySampler = evalstats.LatencySampler
	// ExperimentError is the typed failure a supervised campaign records
	// for one experiment attempt: the fault identity plus either the
	// recovered panic (with stack) or a watchdog timeout.
	ExperimentError = core.ExperimentError
	// QuarantinedFault is one draw a supervised campaign excluded from
	// the tally after exhausting its retry budget (Result.Quarantined).
	QuarantinedFault = core.QuarantinedFault
	// DrawRange selects the contiguous [From, To) draw positions of one
	// stratum's sample — the unit federated campaigns shard a plan by
	// (see WithDrawRanges, SplitPlan, MergeRangeResults).
	DrawRange = core.DrawRange
)

// The four SFI approaches, in the paper's order.
const (
	NetworkWise = core.NetworkWise
	LayerWise   = core.LayerWise
	DataUnaware = core.DataUnaware
	DataAware   = core.DataAware
)

// Checkpoint failure sentinels: Engine.Execute wraps every checkpoint
// rejection around one of these, so callers can dispatch with errors.Is
// and print targeted guidance (cmd/sfirun does). Corruption of the
// primary checkpoint is recovered automatically from the rotated .bak
// backup when possible; the mismatch sentinels mean the checkpoint
// belongs to a different campaign.
var (
	ErrCheckpointCorrupt = core.ErrCheckpointCorrupt
	ErrCheckpointVersion = core.ErrCheckpointVersion
	ErrCheckpointSeed    = core.ErrCheckpointSeed
	ErrCheckpointPlan    = core.ErrCheckpointPlan
	ErrCheckpointWorkers = core.ErrCheckpointWorkers
	ErrCheckpointRange   = core.ErrCheckpointRange
)

// WithDrawRanges restricts an Engine to the [From, To) draw window of
// each stratum (one DrawRange per stratum, in plan order); the sample is
// still drawn in full, so draw j of stratum i names the same fault on
// every member of a federated campaign.
func WithDrawRanges(ranges []DrawRange) EngineOption { return core.WithDrawRanges(ranges) }

// SplitPlan cuts every stratum of a plan into n contiguous draw windows
// (sizes differing by at most one draw), one WithDrawRanges vector per
// part.
func SplitPlan(plan *Plan, n int) ([][]DrawRange, error) { return core.SplitPlan(plan, n) }

// MergeRangeResults folds shard-range Results back into the
// full-campaign Result, strictly in draw order; the merge is
// byte-identical to a single-node run of the same (plan, seed).
func MergeRangeResults(plan *Plan, parts []*Result) (*Result, error) {
	return core.MergeRangeResults(plan, parts)
}

// CheckpointInfo is the engine-independent summary of a checkpoint
// file (schema version, seed, plan fingerprint, writing worker count,
// restored injection prefix); ReadCheckpointInfo reads one following
// the engine's corrupt-primary → .bak recovery ladder. The sfid service
// reports per-job recovery state through it.
type CheckpointInfo = core.CheckpointInfo

// ReadCheckpointInfo reads and CRC-verifies the checkpoint at path.
func ReadCheckpointInfo(path string) (CheckpointInfo, error) {
	return core.ReadCheckpointInfo(path)
}

// Campaign service layer (the sfid daemon and sfictl client are built
// on these; see docs/API.md and docs/OPERATIONS.md).
type (
	// ServiceConfig parameterises a campaign Service.
	ServiceConfig = service.Config
	// Service schedules many campaigns against one shared worker pool
	// with FIFO fairness, priorities, and queue backpressure.
	Service = service.Service
	// CampaignSpec is the submitted description of one campaign job.
	CampaignSpec = service.CampaignSpec
	// JobStatus is the externally visible snapshot of one job.
	JobStatus = service.JobStatus
	// JobState is one node of the job lifecycle state machine.
	JobState = service.JobState
	// ServiceRoute documents one HTTP endpoint of the sfid API.
	ServiceRoute = service.Route
)

// NewService opens the state directory, recovers persisted jobs, and
// starts scheduling.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// ServiceMux builds the sfid HTTP handler over a Service.
func ServiceMux(s *Service) *http.ServeMux { return service.NewMux(s) }

// ServiceRoutes returns the full sfid endpoint table.
func ServiceRoutes() []ServiceRoute { return service.Routes() }

// Floating-point formats for the data-aware analysis.
var (
	// FP32 is IEEE-754 binary32, the paper's representation.
	FP32 = fp.FP32
	// FP16 is IEEE-754 binary16 (future-work extension).
	FP16 = fp.FP16
	// BF16 is bfloat16 (future-work extension).
	BF16 = fp.BF16
)

// BuildModel constructs a registered CNN ("resnet20", "mobilenetv2", or
// "smallcnn") with deterministic pretrained-like weights.
func BuildModel(name string, seed int64) (*Network, error) { return models.Build(name, seed) }

// ModelNames lists the registered model names.
func ModelNames() []string { return models.Names() }

// SyntheticDataset generates the CIFAR-10-like synthetic workload.
func SyntheticDataset(cfg DatasetConfig) *Dataset { return dataset.Synthetic(cfg) }

// DefaultConfig returns the paper's evaluation configuration: e = 1%,
// 99% confidence (t = 2.58), p = 0.5, round-to-nearest.
func DefaultConfig() Config { return stats.DefaultConfig() }

// StuckAtSpace returns the network's permanent stuck-at fault universe
// (every bit of every conv/linear weight, stuck-at-0 and stuck-at-1).
func StuckAtSpace(net *Network) FaultSpace {
	return faultmodel.NewStuckAt(net.LayerParamCounts(), fp.Bits32)
}

// BitFlipSpace returns the transient single-bit-flip universe.
func BitFlipSpace(net *Network) FaultSpace {
	return faultmodel.NewBitFlip(net.LayerParamCounts(), fp.Bits32)
}

// AnalyzeWeights runs the data-aware analysis (Eqs. 4-5) on FP32 weights.
func AnalyzeWeights(weights []float32) *Analysis { return dataaware.AnalyzeFP32(weights) }

// AnalyzeWeightsIn runs the data-aware analysis in another representation.
func AnalyzeWeightsIn(weights []float32, format Format) *Analysis {
	return dataaware.Analyze(weights, format)
}

// PlanNetworkWise applies Eq. 1 once to the whole population
// (the baseline of Leveugle et al.).
func PlanNetworkWise(space FaultSpace, cfg Config) *Plan { return core.PlanNetworkWise(space, cfg) }

// PlanLayerWise applies Eq. 1 per layer.
func PlanLayerWise(space FaultSpace, cfg Config) *Plan { return core.PlanLayerWise(space, cfg) }

// PlanDataUnaware applies Eq. 1 per (bit, layer) stratum with p = 0.5.
func PlanDataUnaware(space FaultSpace, cfg Config) *Plan { return core.PlanDataUnaware(space, cfg) }

// PlanDataAware applies Eq. 1 per (bit, layer) stratum with the derived
// per-bit probabilities (Analysis.P).
func PlanDataAware(space FaultSpace, cfg Config, pPerBit []float64) *Plan {
	return core.PlanDataAware(space, cfg, pPerBit)
}

// AnalyzeWeightsPerLayer runs the data-aware analysis independently per
// layer — the per-layer refinement of the paper's network-wide p(i).
func AnalyzeWeightsPerLayer(net *Network) *PerLayerAnalysis {
	var layers [][]float32
	for _, wl := range net.WeightLayers() {
		layers = append(layers, wl.WeightData())
	}
	return dataaware.AnalyzePerLayer(layers, fp.FP32)
}

// PlanDataAwarePerLayer plans with per-layer per-bit probabilities
// (PerLayerAnalysis.P()).
func PlanDataAwarePerLayer(space FaultSpace, cfg Config, pPerLayerBit [][]float64) *Plan {
	return core.PlanDataAwarePerLayer(space, cfg, pPerLayerBit)
}

// Run executes a plan against an evaluator on one goroutine.
// Determinism guarantee: the Result is a pure function of (plan, seed) —
// the same seed always yields the same Result, and RunParallel with the
// same seed yields a bit-identical one at any worker count.
func Run(ev Evaluator, plan *Plan, seed int64) *Result { return core.Run(ev, plan, seed) }

// Compare judges a result against per-layer exhaustive critical rates.
func Compare(res *Result, exhaustiveByLayer []float64) *Comparison {
	return core.Compare(res, exhaustiveByLayer)
}

// ReplicatedEstimates reruns a plan with seeds 0..n-1 and reports each
// replica's estimate for one layer (Fig. 6's S0-S9).
func ReplicatedEstimates(ev Evaluator, plan *Plan, layer, nReplicas int) []StratifiedEstimate {
	return core.ReplicatedEstimates(ev, plan, layer, nReplicas)
}

// NewInjector builds the inference-based evaluator over a network and a
// fixed evaluation set.
func NewInjector(net *Network, ds *Dataset) *Injector { return inject.New(net, ds) }

// NewOracle builds the full-scale simulated evaluator.
func NewOracle(net *Network, cfg OracleConfig) *Oracle { return oracle.New(net, cfg) }

// OracleDefaults returns the calibrated default oracle configuration.
func OracleDefaults(seed int64) OracleConfig { return oracle.DefaultConfig(seed) }

// NewTrainer builds an SGD trainer for a sequential network.
func NewTrainer(net *Network, lr, momentum float64) (*Trainer, error) {
	return train.New(net, lr, momentum)
}

// TrainableSmallCNN builds a fresh (untrained) SmallCNN for use with
// NewTrainer.
func TrainableSmallCNN(seed int64) *Network { return train.TrainableSmallCNN(seed) }

// NewActivationInjector builds the transient activation-fault evaluator
// (PyTorchFI's "neuron" injection mode): single bit-flips on weight-layer
// outputs during individual inferences.
func NewActivationInjector(net *Network, ds *Dataset) *ActivationInjector {
	return inject.NewActivation(net, ds)
}

// AnalyzeWeightsINT8 quantizes the weights to symmetric INT8 and runs
// the data-aware analysis in the integer domain (the "different data
// representations" extension of the paper's conclusions).
func AnalyzeWeightsINT8(weights []float32) *INT8Analysis { return quantize.Analyze(weights) }

// TopSeparated reports whether the top two entries of a layer ranking
// are statistically separated at the configuration's confidence.
func TopSeparated(ranks []LayerRank, c Config) bool { return core.TopSeparated(ranks, c) }

// ReadResultJSON deserializes a campaign result saved with
// Result.WriteJSON.
func ReadResultJSON(r io.Reader) (*Result, error) { return core.ReadResultJSON(r) }

// RunParallel is Run spread over up to workers goroutines (0 selects
// GOMAXPROCS). Every stratum's pre-drawn sample is sharded across the
// workers, so even a single-stratum network-wise plan saturates all
// cores. Determinism guarantee: the same seed yields a Result
// bit-identical to Run's, regardless of worker count. Both evaluator
// families are supported — the Oracle and ActivationInjector are shared
// (concurrency-safe), and the Injector is cloned per worker
// (WorkerCloner) because its experiments mutate live network weights.
func RunParallel(ev Evaluator, plan *Plan, seed int64, workers int) *Result {
	return core.RunParallel(ev, plan, seed, workers)
}

// NewEngine builds the unified campaign engine. Defaults match
// RunParallel (all cores, no checkpointing, no early stop); see the
// With* options for the operational controls.
func NewEngine(opts ...EngineOption) *Engine { return core.NewEngine(opts...) }

// WithWorkers sets the evaluation worker count (0 = GOMAXPROCS,
// 1 = serial in draw order).
func WithWorkers(n int) EngineOption { return core.WithWorkers(n) }

// WithProgress installs a streaming progress sink, called synchronously
// from the engine's dispatcher with per-stratum draws completed, running
// critical tallies, and injections/sec.
func WithProgress(sink ProgressSink) EngineOption { return core.WithProgress(sink) }

// WithProgressInterval sets the tallied injections between progress
// events (default 10,000).
func WithProgressInterval(n int64) EngineOption { return core.WithProgressInterval(n) }

// WithCheckpoint enables periodic campaign checkpoints at path; an
// interrupted campaign resumed from the checkpoint (WithResume) yields a
// Result bit-identical to an uninterrupted run at the same seed.
func WithCheckpoint(path string) EngineOption { return core.WithCheckpoint(path) }

// WithCheckpointInterval sets the tallied injections between periodic
// checkpoint writes (default 100,000).
func WithCheckpointInterval(n int64) EngineOption { return core.WithCheckpointInterval(n) }

// WithResume makes Execute load the WithCheckpoint file before starting
// (a missing file starts fresh; a mismatched plan or seed is an error).
func WithResume() EngineOption { return core.WithResume() }

// WithEarlyStop halts each stratum once its achieved margin (Eq. 3
// inverted at the observed proportion) reaches target (0 = the plan's
// requested ErrorMargin), reporting actual-n in the Result alongside the
// planned-n in the Plan.
func WithEarlyStop(target float64) EngineOption { return core.WithEarlyStop(target) }

// WithDecodeValidation toggles the defensive fault-decode cross-check
// explicitly, overriding the SFI_VALIDATE_DECODE environment gate.
func WithDecodeValidation(on bool) EngineOption { return core.WithDecodeValidation(on) }

// WithTrace installs a structured trace sink: the engine emits
// campaign/stratum/shard lifecycle events, early-stop firings, and
// checkpoint saves through it. Tracing is observability only — the
// Result is bit-identical with or without a sink.
func WithTrace(sink TraceSink) EngineOption { return core.WithTrace(sink) }

// WithExperimentTimeout enables the per-experiment watchdog: an
// IsCritical call (including fault decode) that exceeds d counts as a
// failed attempt, exactly like a panic, and is retried or quarantined
// under the WithMaxRetries budget. Setting a timeout enables campaign
// supervision (panic isolation + quarantine) even when WithMaxRetries
// is not used.
func WithExperimentTimeout(d time.Duration) EngineOption { return core.WithExperimentTimeout(d) }

// WithMaxRetries enables supervised execution with n retries per
// failing experiment: each retry runs on a freshly cloned evaluator
// (WorkerCloner), and a fault that exhausts the budget is quarantined —
// excluded from the tally, reported in Result.Quarantined, with its
// stratum's margin recomputed over the reduced effective n. n = 0
// supervises (panics no longer crash the campaign) without retrying.
func WithMaxRetries(n int) EngineOption { return core.WithMaxRetries(n) }

// WithGroupedEvaluation makes each worker evaluate its shard's draws
// grouped by fault identity (layer, weight, bit, model) so consecutive
// experiments on the same weight share the injector's cached golden
// prefix; tallies are still merged strictly in draw order, so the
// Result stays bit-identical to the ungrouped schedule. Off by default:
// grouping is pure overhead for cheap evaluators (the oracle), and
// supervised campaigns (WithMaxRetries / WithExperimentTimeout) ignore
// it.
func WithGroupedEvaluation(on bool) EngineOption { return core.WithGroupedEvaluation(on) }

// WatchdogAbandonedLanes reports how many experiment goroutines
// abandoned by the WithExperimentTimeout watchdog are still pinned by
// their hung IsCritical call, process-wide. cmd/sfirun exports it as
// the sfi_watchdog_abandoned_lanes gauge.
func WatchdogAbandonedLanes() int64 { return core.WatchdogAbandonedLanes() }

// WithWarnings installs a sink for the engine's rare one-line
// operational warnings (quarantine decisions, checkpoint recovery from
// backup). Without one they go to stderr.
func WithWarnings(sink func(msg string)) EngineOption { return core.WithWarnings(sink) }

// AsyncSink decouples a slow ProgressSink from the engine's dispatcher
// through a buffered channel: non-final events are dropped when the
// buffer is full (a later snapshot supersedes them), final events never
// are. Call the returned stop function after Execute returns to drain
// and release the sink goroutine.
func AsyncSink(sink ProgressSink, buf int) (ProgressSink, func()) {
	return core.AsyncSink(sink, buf)
}

// SaveWeights serializes a network's injectable weights (checksummed
// binary container).
func SaveWeights(net *Network, w io.Writer) error { return models.SaveWeights(net, w) }

// LoadWeights restores weights saved with SaveWeights into a network of
// identical topology.
func LoadWeights(net *Network, r io.Reader) error { return models.LoadWeights(net, r) }

// AssessReliability converts a bit-granular campaign result into an SDC
// FIT report given a raw per-bit soft-error rate, enabling the
// selective-protection what-if analysis (see internal/reliability).
func AssessReliability(res *Result, cfg SERConfig) (*ReliabilityReport, error) {
	return reliability.Assess(res, cfg)
}

// MissionReliability returns exp(−FIT·hours/10⁹), the survival
// probability over a mission under a constant failure rate.
func MissionReliability(fit, hours float64) float64 {
	return reliability.MissionReliability(fit, hours)
}

// RequiredFIT returns the maximum tolerable SDC FIT for a target mission
// survival probability.
func RequiredFIT(targetReliability, hours float64) float64 {
	return reliability.RequiredFIT(targetReliability, hours)
}

// AdjacentMBU expands a seed fault into a burst of adjacent bit-flips in
// the same weight word (multi-bit upset); evaluate it with
// Injector.IsCriticalMulti.
func AdjacentMBU(seed Fault, width int) []Fault {
	return inject.AdjacentMBU(seed, width, fp.Bits32)
}

// Accuracy returns a network's top-1 accuracy on a dataset.
func Accuracy(net *Network, ds *Dataset) float64 { return train.Accuracy(net, ds) }
