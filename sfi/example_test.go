package sfi_test

import (
	"fmt"

	"cnnsfi/sfi"
)

// ExampleDefaultConfig reproduces the sample sizes of the paper's
// Table I/II header cases with the default (paper-compatible)
// conventions: e = 1%, 99% confidence, t = 2.58, round-to-nearest.
func ExampleDefaultConfig() {
	cfg := sfi.DefaultConfig()
	fmt.Println(cfg.SampleSize(17174144))  // ResNet-20 network-wise
	fmt.Println(cfg.SampleSize(141029376)) // MobileNetV2 network-wise
	fmt.Println(cfg.SampleSize(27648))     // ResNet-20 layer 0
	// Output:
	// 16625
	// 16639
	// 10389
}

// ExamplePlanLayerWise shows a complete layer-wise plan for the small
// validation CNN.
func ExamplePlanLayerWise() {
	net, _ := sfi.BuildModel("smallcnn", 1)
	space := sfi.StuckAtSpace(net)
	plan := sfi.PlanLayerWise(space, sfi.DefaultConfig())
	for l := 0; l < space.NumLayers(); l++ {
		fmt.Printf("layer %d: population %d, sample %d\n",
			l, space.LayerTotal(l), plan.LayerInjections(l))
	}
	// Output:
	// layer 0: population 6912, sample 4884
	// layer 1: population 18432, sample 8746
	// layer 2: population 73728, sample 13577
	// layer 3: population 10240, sample 6339
}

// ExampleAnalyzeWeights derives the data-aware per-bit criticality from
// a network's golden weights; the exponent MSB always dominates.
func ExampleAnalyzeWeights() {
	net, _ := sfi.BuildModel("smallcnn", 1)
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	fmt.Println("most critical bit:", analysis.MostCriticalBit())
	fmt.Printf("p(30) = %.1f, p(0) < 0.001: %v\n",
		analysis.PFor(30), analysis.PFor(0) < 0.001)
	// Output:
	// most critical bit: 30
	// p(30) = 0.5, p(0) < 0.001: true
}
