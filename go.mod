module cnnsfi

go 1.22
